// Single-flight result cache for the query server (DESIGN.md §10).
//
// Keyed on (dataset name, snapshot epoch, canonical query shape), the
// cache stores the DETERMINISTIC response payload of completed queries so
// repeated identical queries — from any tenant — are served without
// re-mining. Two mechanisms compose:
//
//   1. Completed-result cache: bounded FIFO map of key -> payload bytes.
//      Only successful, untruncated results are published (a truncated or
//      failed result depends on limits and timing, so caching it would
//      leak one tenant's budget into another's answer).
//   2. In-flight coalescing ("single flight"): the first arrival for a
//      key becomes the LEADER and computes; concurrent arrivals for the
//      same key become FOLLOWERS and block on the leader's flight instead
//      of redundantly mining the same tree. If the leader fails (publishes
//      nothing), followers fall back to computing independently — an error
//      is never fanned out as if it were a result.
//
// Soundness of the key: snapshot epoch versions the data (a swap changes
// the epoch, so stale entries can never match); the canonical query shape
// covers everything that affects the payload of a COMPLETED query.
// Resource limits and backend choice are deliberately excluded — all
// backends are bit-identical and a completed, untruncated result is the
// full deterministic answer under any sufficient budget.

#ifndef RPM_SERVE_RESULT_CACHE_H_
#define RPM_SERVE_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace rpm::serve {

class ResultCache {
 public:
  /// One in-flight computation; followers block on it via Wait().
  struct Flight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    /// Null when the leader failed or the result was not cacheable.
    std::shared_ptr<const std::string> value;
  };

  struct JoinOutcome {
    /// Completed-cache hit: the payload, ready to send. Null otherwise.
    std::shared_ptr<const std::string> cached;
    /// Set on miss: the flight this caller belongs to.
    std::shared_ptr<Flight> flight;
    /// True when this caller must compute and then Publish() (exactly one
    /// leader per flight).
    bool leader = false;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t evictions = 0;
  };

  explicit ResultCache(size_t max_entries) : max_entries_(max_entries) {}

  /// Joins the flight for `key`: cache hit, new leader, or follower.
  JoinOutcome Join(const std::string& key);

  /// Leader hand-off. `value` null or cacheable=false completes the
  /// flight without populating the cache (followers then recompute).
  /// Idempotent; every leader must call it on all paths (see FlightLease).
  void Publish(const std::string& key, const std::shared_ptr<Flight>& flight,
               std::shared_ptr<const std::string> value, bool cacheable);

  /// Follower wait: blocks until the leader publishes; returns the value
  /// (null => compute independently).
  std::shared_ptr<const std::string> Wait(
      const std::shared_ptr<Flight>& flight) const;

  Stats stats() const;
  size_t size() const;

 private:
  void EvictIfNeeded();  // Requires mutex_ held.

  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const std::string>> completed_;
  std::deque<std::string> fifo_;  // Insertion order of completed_ keys.
  std::map<std::string, std::shared_ptr<Flight>> in_flight_;
  Stats stats_;
};

/// RAII leader obligation: guarantees Publish() on every exit path, so a
/// throwing or early-returning leader can never strand followers.
class FlightLease {
 public:
  FlightLease(ResultCache* cache, std::string key,
              std::shared_ptr<ResultCache::Flight> flight)
      : cache_(cache), key_(std::move(key)), flight_(std::move(flight)) {}
  FlightLease(const FlightLease&) = delete;
  FlightLease& operator=(const FlightLease&) = delete;
  ~FlightLease() {
    if (!published_) cache_->Publish(key_, flight_, nullptr, false);
  }

  void Publish(std::shared_ptr<const std::string> value, bool cacheable) {
    cache_->Publish(key_, flight_, std::move(value), cacheable);
    published_ = true;
  }

 private:
  ResultCache* cache_;
  std::string key_;
  std::shared_ptr<ResultCache::Flight> flight_;
  bool published_ = false;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_RESULT_CACHE_H_
