#include "rpm/serve/result_cache.h"

#include <chrono>
#include <utility>

namespace rpm::serve {

ResultCache::JoinOutcome ResultCache::Join(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  JoinOutcome outcome;
  auto hit = completed_.find(key);
  if (hit != completed_.end()) {
    outcome.cached = hit->second;
    ++stats_.hits;
    return outcome;
  }
  auto flight = in_flight_.find(key);
  if (flight != in_flight_.end()) {
    outcome.flight = flight->second;
    ++stats_.coalesced;
    return outcome;
  }
  outcome.flight = std::make_shared<Flight>();
  outcome.leader = true;
  in_flight_.emplace(key, outcome.flight);
  ++stats_.misses;
  return outcome;
}

void ResultCache::Publish(const std::string& key,
                          const std::shared_ptr<Flight>& flight,
                          std::shared_ptr<const std::string> value,
                          bool cacheable) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Retire the flight first so late joiners start a fresh one (or hit
    // the completed cache) instead of waiting on a finished flight.
    auto it = in_flight_.find(key);
    if (it != in_flight_.end() && it->second == flight) in_flight_.erase(it);
    if (value != nullptr && cacheable &&
        completed_.emplace(key, value).second) {
      fifo_.push_back(key);
      EvictIfNeeded();
    }
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mutex);
    if (flight->done) return;  // Idempotent (lease + explicit publish).
    flight->done = true;
    flight->value = cacheable ? std::move(value) : nullptr;
  }
  flight->done_cv.notify_all();
}

std::shared_ptr<const std::string> ResultCache::Wait(
    const std::shared_ptr<Flight>& flight) const {
  std::unique_lock<std::mutex> lock(flight->mutex);
  // The leader always publishes (FlightLease), so a plain predicate wait
  // suffices; the bounded re-check mirrors the rest of serve/ anyway.
  while (!flight->done) {
    flight->done_cv.wait_for(lock, std::chrono::milliseconds(50));
  }
  return flight->value;
}

void ResultCache::EvictIfNeeded() {
  while (completed_.size() > max_entries_ && !fifo_.empty()) {
    completed_.erase(fifo_.front());  // Readers hold shared_ptr pins.
    fifo_.pop_front();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_.size();
}

}  // namespace rpm::serve
