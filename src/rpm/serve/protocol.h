// Wire protocol of the query server: line-delimited JSON requests and
// responses over a byte stream (DESIGN.md §10, docs/API.md "Server wire
// protocol").
//
// Requests are one JSON object per line. Field names mirror the
// `rpminer mine` flag vocabulary (per, min_ps, min_rec, tolerance, ...) so
// the two entry points cannot drift; unknown fields are rejected, exactly
// like unknown flags.
//
// Responses are one JSON object per line, always carrying "status" (a
// stable upper-case code) and echoing the request "id". The payload of a
// completed query is DETERMINISTIC — no timings, no cache or reuse info —
// so identical queries yield identical bytes whether computed, cached, or
// coalesced, and an armed fault campaign can byte-compare its disarmed
// rerun. History-dependent observability (cache hit/miss, tree reuse)
// rides in a separate "meta" object that `"meta": false` omits.

#ifndef RPM_SERVE_PROTOCOL_H_
#define RPM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "rpm/common/status.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query.h"
#include "rpm/timeseries/item_dictionary.h"

namespace rpm::serve {

/// Admission rejection (not a StatusCode: the query never ran).
inline constexpr const char* kStatusOverloaded = "OVERLOADED";
/// Server draining / shut down.
inline constexpr const char* kStatusUnavailable = "UNAVAILABLE";

/// Stable wire name for an engine StatusCode ("OK", "INVALID_ARGUMENT",
/// "NOT_FOUND", "DEADLINE_EXCEEDED", "RESOURCE_EXHAUSTED", "CANCELLED",
/// ...; never changes once shipped).
const char* WireStatusName(StatusCode code);

/// One parsed request line.
struct Request {
  std::string op;  ///< "ping" | "list" | "query" | "swap" | "stats"
  /// Client correlation id, echoed verbatim in the response ("" allowed).
  std::string id;
  /// Tenant name for admission control; absent -> "anonymous".
  std::string tenant = "anonymous";
  /// Dataset name (query/swap ops).
  std::string dataset;

  // -- op == "query" --
  /// Requested query; limits are the CLIENT's request, clamped to tenant
  /// quotas at execution time.
  engine::Query query;
  engine::BackendKind backend = engine::BackendKind::kSequential;
  /// Parallel-backend workers (serve default 1: thread count stays
  /// bounded by sessions, not multiplied by them).
  uint64_t threads = 1;
  /// False suppresses the "meta" object for byte-deterministic replies.
  bool want_meta = true;

  // -- op == "swap" --
  std::string path;
  std::string format = "tspmf";
};

/// Parses and validates one request line. The error message is safe to
/// send back as an INVALID_ARGUMENT response.
Result<Request> ParseRequest(const std::string& line);

/// Canonical single-flight / result-cache key: dataset identity (name +
/// epoch) plus every request field that changes a COMPLETED query's
/// payload. Limits and backend are excluded by design (result_cache.h).
std::string CacheKey(const std::string& dataset, uint64_t epoch,
                     const engine::Query& query);

/// Deterministic response payload of an executed query: a JSON fragment
///   "status":..., "truncated":..., "pattern_count":N, "patterns_json":...
/// (plus "error" for non-OK). "patterns_json" holds the exact bytes
/// `rpminer mine --output-format=json` would write, JSON-escaped, so
/// clients can unescape to the byte-identical standalone artifact.
Result<std::string> QueryPayload(const engine::QueryResult& result,
                                 const ItemDictionary& dict);

/// Full response line (no trailing newline): {"id":...,<payload>[,"meta":
/// {<meta>}]}. `meta` empty => omitted.
std::string WrapResponse(const std::string& id, const std::string& payload,
                         const std::string& meta);

/// {"id":...,"status":<status>,"error":<message>}
std::string ErrorResponse(const std::string& id, const std::string& status,
                          const std::string& message);

/// OVERLOADED rejection with the admission controller's backoff hint.
std::string OverloadedResponse(const std::string& id,
                               int64_t retry_after_ms,
                               const std::string& rejected_by);

}  // namespace rpm::serve

#endif  // RPM_SERVE_PROTOCOL_H_
