// QueryService: the transport-independent core of the query server — one
// request line in, one response line out (DESIGN.md §10).
//
// The TCP layer (serve/server.h) owns sockets and threads; this class owns
// everything else: request parsing, the dataset catalog, per-tenant
// admission, quota clamping, the single-flight result cache, and drain
// semantics. Splitting here keeps the whole op surface unit-testable
// in-process (tests/serve_service_test.cc drives HandleLine directly, no
// sockets involved) and keeps the socket layer too small to hide bugs.
//
// Error contract: HandleLine NEVER throws and always returns exactly one
// well-formed JSON response line — malformed input, unknown datasets,
// quota rejections, budget stops and drain all surface as structured
// status responses, not dropped connections.

#ifndef RPM_SERVE_SERVICE_H_
#define RPM_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "rpm/core/cancellation.h"
#include "rpm/engine/snapshot_registry.h"
#include "rpm/serve/admission.h"
#include "rpm/serve/protocol.h"
#include "rpm/serve/result_cache.h"
#include "rpm/serve/tenant_registry.h"

namespace rpm::serve {

class QueryService {
 public:
  struct Options {
    AdmissionController::Options admission;
    /// Completed-result cache capacity (entries, FIFO-evicted).
    size_t cache_entries = 64;
  };

  QueryService(engine::SnapshotRegistry* registry, TenantRegistry tenants,
               const Options& options);

  /// Handles one request line; returns one response line (no trailing
  /// newline). Total, never throws.
  std::string HandleLine(const std::string& line);

  /// Enters drain mode: new queries get UNAVAILABLE, queued admissions
  /// wake with UNAVAILABLE, and in-flight queries are cancelled (they
  /// return their deterministic committed prefix with CANCELLED).
  /// Idempotent; there is no way back — drain ends in process exit.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Queries currently holding admission slots (drain completion check).
  uint64_t in_flight() const { return admission_.running(); }

  const TenantRegistry& tenants() const { return tenants_; }
  AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  std::string HandleQuery(const Request& request);
  std::string HandleSwap(const Request& request);
  std::string HandleList(const Request& request);
  std::string HandleStats(const Request& request);
  /// Executes the (already admitted, already clamped) query and renders
  /// its deterministic payload. `cacheable_out`: OK and untruncated.
  Result<std::string> Execute(const Request& request,
                              const engine::RegisteredDataset& dataset,
                              const engine::Query& query,
                              bool* cacheable_out, bool* tree_reused_out);

  engine::SnapshotRegistry* registry_;
  TenantRegistry tenants_;
  AdmissionController admission_;
  ResultCache cache_;
  std::atomic<bool> draining_{false};
  /// Cancels in-flight queries on drain; wired into every Query::cancel.
  CancellationToken drain_token_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVICE_H_
