#include "rpm/serve/service.h"

#include <exception>
#include <memory>
#include <utility>

#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/executor.h"
#include "rpm/serve/wire.h"

namespace rpm::serve {

QueryService::QueryService(engine::SnapshotRegistry* registry,
                           TenantRegistry tenants, const Options& options)
    : registry_(registry),
      tenants_(std::move(tenants)),
      admission_(options.admission, &tenants_),
      cache_(options.cache_entries) {}

std::string QueryService::HandleLine(const std::string& line) {
  try {
    if (line.size() > kMaxJsonBytes) {
      return ErrorResponse("", WireStatusName(StatusCode::kInvalidArgument),
                           "request line exceeds " +
                               std::to_string(kMaxJsonBytes) + " bytes");
    }
    Result<Request> request = ParseRequest(line);
    if (!request.ok()) {
      return ErrorResponse("",
                           WireStatusName(StatusCode::kInvalidArgument),
                           request.status().message());
    }
    if (request->op == "ping") {
      return WrapResponse(request->id, "\"status\":\"OK\"", "");
    }
    if (request->op == "list") return HandleList(*request);
    if (request->op == "stats") return HandleStats(*request);
    if (request->op == "swap") return HandleSwap(*request);
    return HandleQuery(*request);
  } catch (const std::exception& e) {
    // Last-resort fence: an in-band failure must become a structured
    // response, never a dropped connection or a crash.
    return ErrorResponse("", WireStatusName(StatusCode::kUnknown),
                         std::string("internal error: ") + e.what());
  } catch (...) {
    return ErrorResponse("", WireStatusName(StatusCode::kUnknown),
                         "internal error");
  }
}

std::string QueryService::HandleQuery(const Request& request) {
  if (draining()) {
    return ErrorResponse(request.id, kStatusUnavailable,
                         "server is draining");
  }
  Result<engine::RegisteredDataset> dataset =
      registry_->Get(request.dataset);
  if (!dataset.ok()) {
    return ErrorResponse(request.id,
                         WireStatusName(dataset.status().code()),
                         dataset.status().message());
  }

  // Admission FIRST, then cache: coalesced followers hold a slot while
  // they wait, so "one tree build per identical burst" (the coalescing
  // promise, about compute) never turns into "unbounded concurrent
  // waiters" (the admission promise, about slots).
  AdmissionController::Decision decision = admission_.Admit(request.tenant);
  if (decision.outcome == AdmissionController::Outcome::kRejected) {
    return OverloadedResponse(request.id, decision.retry_after_ms,
                              decision.rejected_by);
  }
  if (decision.outcome == AdmissionController::Outcome::kShutdown) {
    return ErrorResponse(request.id, kStatusUnavailable,
                         "server is draining");
  }

  engine::Query query = request.query;
  query.limits =
      tenants_.QuotasFor(request.tenant).ClampLimits(query.limits);
  query.cancel = &drain_token_;

  const std::string key =
      CacheKey(dataset->name, dataset->epoch, query);
  ResultCache::JoinOutcome join = cache_.Join(key);
  std::shared_ptr<const std::string> payload;
  const char* cache_state = "hit";
  bool tree_reused = false;
  bool computed = false;
  if (join.cached != nullptr) {
    payload = join.cached;
  } else if (join.leader) {
    cache_state = "miss";
    computed = true;
    FlightLease lease(&cache_, key, join.flight);
    bool cacheable = false;
    Result<std::string> fresh =
        Execute(request, *dataset, query, &cacheable, &tree_reused);
    if (!fresh.ok()) {
      // Lease publishes "no result" on destruction; followers recompute.
      return ErrorResponse(request.id,
                           WireStatusName(fresh.status().code()),
                           fresh.status().message());
    }
    payload = std::make_shared<const std::string>(std::move(*fresh));
    lease.Publish(payload, cacheable);
  } else {
    cache_state = "coalesced";
    payload = cache_.Wait(join.flight);
    if (payload == nullptr) {
      // The leader failed or its result was uncacheable (limit-truncated);
      // fall back to an independent run under OUR clamped limits.
      computed = true;
      bool cacheable = false;
      Result<std::string> fresh =
          Execute(request, *dataset, query, &cacheable, &tree_reused);
      if (!fresh.ok()) {
        return ErrorResponse(request.id,
                             WireStatusName(fresh.status().code()),
                             fresh.status().message());
      }
      payload = std::make_shared<const std::string>(std::move(*fresh));
    }
  }

  std::string meta;
  if (request.want_meta) {
    meta = "\"dataset\":\"" + JsonEscape(dataset->name) +
           "\",\"epoch\":" + std::to_string(dataset->epoch) +
           ",\"cache\":\"" + cache_state + "\",\"backend\":\"" +
           engine::BackendName(request.backend) + "\"";
    if (computed) {
      meta += std::string(",\"tree_reused\":") +
              (tree_reused ? "true" : "false");
    }
  }
  return WrapResponse(request.id, *payload, meta);
}

Result<std::string> QueryService::Execute(
    const Request& request, const engine::RegisteredDataset& dataset,
    const engine::Query& query, bool* cacheable_out,
    bool* tree_reused_out) {
  engine::ExecOptions exec;
  exec.threads = static_cast<size_t>(request.threads);
  RPM_ASSIGN_OR_RETURN(engine::QueryResult result,
                       engine::GetExecutor(request.backend)
                           .Execute(*dataset.planner, query, exec));
  *tree_reused_out = result.tree_reused;
  // Only complete results are shared: a truncated or budget-stopped run
  // reflects THIS query's clamped limits, not the answer to the key.
  *cacheable_out = result.status.ok() && !result.truncated;
  return QueryPayload(result, dataset.snapshot->dictionary());
}

std::string QueryService::HandleSwap(const Request& request) {
  if (draining()) {
    return ErrorResponse(request.id, kStatusUnavailable,
                         "server is draining");
  }
  Result<std::shared_ptr<const engine::DatasetSnapshot>> snapshot =
      engine::DatasetSnapshot::Load(request.path, request.format);
  if (!snapshot.ok()) {
    return ErrorResponse(request.id,
                         WireStatusName(snapshot.status().code()),
                         snapshot.status().message());
  }
  Result<engine::RegisteredDataset> entry =
      registry_->Publish(request.dataset, std::move(*snapshot));
  if (!entry.ok()) {
    return ErrorResponse(request.id,
                         WireStatusName(entry.status().code()),
                         entry.status().message());
  }
  return WrapResponse(
      request.id,
      "\"status\":\"OK\",\"dataset\":\"" + JsonEscape(entry->name) +
          "\",\"epoch\":" + std::to_string(entry->epoch) +
          ",\"transactions\":" + std::to_string(entry->snapshot->size()),
      "");
}

std::string QueryService::HandleList(const Request& request) {
  std::string payload = "\"status\":\"OK\",\"datasets\":[";
  bool first = true;
  for (const engine::RegisteredDataset& entry : registry_->List()) {
    if (!first) payload += ',';
    first = false;
    payload += "{\"name\":\"" + JsonEscape(entry.name) +
               "\",\"epoch\":" + std::to_string(entry.epoch) +
               ",\"transactions\":" + std::to_string(entry.snapshot->size()) +
               ",\"items\":" +
               std::to_string(entry.snapshot->ItemUniverseSize()) + "}";
  }
  payload += "]";
  return WrapResponse(request.id, payload, "");
}

std::string QueryService::HandleStats(const Request& request) {
  const AdmissionController::Stats admission = admission_.stats();
  const ResultCache::Stats cache = cache_.stats();
  std::string payload =
      "\"status\":\"OK\",\"admission\":{\"admitted\":" +
      std::to_string(admission.admitted) +
      ",\"rejected_tenant\":" + std::to_string(admission.rejected_tenant) +
      ",\"rejected_global\":" + std::to_string(admission.rejected_global) +
      ",\"queued_total\":" + std::to_string(admission.queued_total) +
      ",\"running\":" + std::to_string(admission_.running()) +
      "},\"cache\":{\"hits\":" + std::to_string(cache.hits) +
      ",\"misses\":" + std::to_string(cache.misses) +
      ",\"coalesced\":" + std::to_string(cache.coalesced) +
      ",\"evictions\":" + std::to_string(cache.evictions) +
      ",\"entries\":" + std::to_string(cache_.size()) +
      "},\"datasets\":" + std::to_string(registry_->size()) +
      ",\"draining\":" + (draining() ? "true" : "false");
  return WrapResponse(request.id, payload, "");
}

void QueryService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  // Stop new work, wake queued admissions, then cut running queries loose
  // at their next budget checkpoint (deterministic committed prefix).
  admission_.Shutdown();
  drain_token_.Cancel();
}

}  // namespace rpm::serve
