// Per-tenant + global admission control for the query server
// (DESIGN.md §10).
//
// Every query holds an admission slot while it executes. A tenant may run
// at most quota.max_concurrent queries at once and wait in a bounded queue
// of quota.max_queued more; the process shares one global pool of
// options.global_max_concurrent slots with its own bounded queue. A
// request that cannot be queued — tenant queue full OR global queue
// full — is rejected IMMEDIATELY with a retry-after hint rather than
// stalled, so saturation surfaces as fast, explicit OVERLOADED responses
// and one hot tenant's backlog can never occupy the accept loop or
// another tenant's slots.
//
// Invariants (asserted by tests/serve_admission_test.cc):
//   A1  at any instant, per-tenant running <= quota.max_concurrent and
//       total running <= global_max_concurrent;
//   A2  a request is queued only when BOTH queues have room — otherwise
//       it is rejected without blocking;
//   A3  Shutdown() wakes every queued waiter with kShutdown (drain never
//       leaves a thread parked in admission);
//   A4  tickets are released exactly once (RAII), so slots cannot leak on
//       any error path.

#ifndef RPM_SERVE_ADMISSION_H_
#define RPM_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "rpm/serve/tenant_registry.h"

namespace rpm::serve {

class AdmissionController {
 public:
  struct Options {
    /// Queries executing at once across all tenants.
    uint64_t global_max_concurrent = 8;
    /// Waiters beyond that before global rejections start.
    uint64_t global_max_queued = 32;
    /// Retry-after hints scale linearly with the rejecting scope's load:
    /// hint = base * (1 + running + queued of that scope).
    int64_t retry_after_base_ms = 50;
  };

  enum class Outcome : uint8_t { kAdmitted, kRejected, kShutdown };

  /// RAII slot: releases on destruction. Movable, not copyable.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket() { Release(); }
    void Release();
    bool held() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, std::string tenant)
        : controller_(controller), tenant_(std::move(tenant)) {}
    AdmissionController* controller_ = nullptr;
    std::string tenant_;
  };

  struct Decision {
    Outcome outcome = Outcome::kRejected;
    Ticket ticket;  // held() iff outcome == kAdmitted
    /// For kRejected: the suggested client backoff and which limit hit
    /// ("tenant" or "global").
    int64_t retry_after_ms = 0;
    std::string rejected_by;
  };

  /// Aggregate accounting (monotonic; snapshot via stats()).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected_tenant = 0;
    uint64_t rejected_global = 0;
    uint64_t queued_total = 0;
  };

  AdmissionController(const Options& options,
                      const TenantRegistry* tenants);

  /// Admits, queues (blocking), or rejects `tenant`'s next query. Blocks
  /// only while queued within both bounds; returns kShutdown immediately
  /// (or on wake) once Shutdown() ran.
  Decision Admit(const std::string& tenant);

  /// Wakes all queued waiters with kShutdown and makes every later Admit
  /// return kShutdown. Idempotent.
  void Shutdown();

  Stats stats() const;
  uint64_t running() const;

 private:
  friend class Ticket;

  struct TenantState {
    uint64_t running = 0;
    uint64_t queued = 0;
  };

  void Release(const std::string& tenant);
  /// Drops empty per-tenant states so the map tracks active tenants only.
  void MaybeErase(const std::string& tenant);

  const Options options_;
  const TenantRegistry* tenants_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool shutdown_ = false;
  uint64_t global_running_ = 0;
  uint64_t global_queued_ = 0;
  std::map<std::string, TenantState> per_tenant_;
  Stats stats_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_ADMISSION_H_
