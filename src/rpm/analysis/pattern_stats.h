// Derived per-pattern statistics for ranking and reporting.
//
// Raw support over-ranks always-on background patterns; these measures
// separate sustained seasonal structure (high coverage inside few long
// intervals) from whole-series regulars and from flickers.

#ifndef RPM_ANALYSIS_PATTERN_STATS_H_
#define RPM_ANALYSIS_PATTERN_STATS_H_

#include <cstdint>
#include <string>

#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::analysis {

struct PatternStats {
  /// Sum of interesting-interval durations (time units).
  Timestamp total_interesting_duration = 0;
  /// Longest single interesting interval.
  Timestamp max_interval_duration = 0;
  /// Fraction of [series_begin, series_end] covered by interesting
  /// intervals (0 when the span is empty).
  double series_coverage = 0.0;
  /// Mean periodic-support across interesting intervals.
  double mean_periodic_support = 0.0;
  /// Largest periodic-support.
  uint64_t max_periodic_support = 0;
  /// Appearances inside interesting intervals / total support: how much of
  /// the pattern's activity is concentrated in its periodic phases.
  double periodic_concentration = 0.0;
};

/// Computes stats for one mined pattern against the series span
/// [series_begin, series_end]. Precondition: series_begin <= series_end.
PatternStats ComputePatternStats(const RecurringPattern& pattern,
                                 Timestamp series_begin,
                                 Timestamp series_end);

/// As above against the database's own span, resolving the interval list
/// through PatternIntervalsOrCompute (interval_metrics.h): a pattern that
/// arrived without intervals is scored against freshly computed IPI^X
/// instead of silently scoring as all-zero. `db` must be non-empty.
PatternStats ComputePatternStats(const RecurringPattern& pattern,
                                 const TransactionDatabase& db,
                                 const RpParams& params);

/// One-line rendering ("coverage=12.3% intervals=2 maxps=801 ...").
std::string FormatPatternStats(const PatternStats& stats);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_PATTERN_STATS_H_
