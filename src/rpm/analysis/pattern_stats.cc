#include "rpm/analysis/pattern_stats.h"

#include <algorithm>
#include <utility>

#include "rpm/analysis/interval_metrics.h"
#include "rpm/common/logging.h"
#include "rpm/common/string_util.h"

namespace rpm::analysis {

PatternStats ComputePatternStats(const RecurringPattern& pattern,
                                 Timestamp series_begin,
                                 Timestamp series_end) {
  RPM_DCHECK(series_begin <= series_end);
  PatternStats stats;
  uint64_t periodic_appearances = 0;
  for (const PeriodicInterval& pi : pattern.intervals) {
    stats.total_interesting_duration += pi.Duration();
    stats.max_interval_duration =
        std::max(stats.max_interval_duration, pi.Duration());
    stats.max_periodic_support =
        std::max(stats.max_periodic_support, pi.periodic_support);
    periodic_appearances += pi.periodic_support;
  }
  if (!pattern.intervals.empty()) {
    stats.mean_periodic_support =
        static_cast<double>(periodic_appearances) /
        static_cast<double>(pattern.intervals.size());
  }
  const Timestamp span = series_end - series_begin;
  if (span > 0) {
    stats.series_coverage =
        static_cast<double>(stats.total_interesting_duration) /
        static_cast<double>(span);
  }
  if (pattern.support > 0) {
    stats.periodic_concentration =
        static_cast<double>(periodic_appearances) /
        static_cast<double>(pattern.support);
  }
  return stats;
}

PatternStats ComputePatternStats(const RecurringPattern& pattern,
                                 const TransactionDatabase& db,
                                 const RpParams& params) {
  RPM_CHECK(!db.empty());
  if (!pattern.intervals.empty()) {
    return ComputePatternStats(pattern, db.start_ts(), db.end_ts());
  }
  RecurringPattern resolved = pattern;
  resolved.intervals = PatternIntervalsOrCompute(pattern, db, params);
  return ComputePatternStats(resolved, db.start_ts(), db.end_ts());
}

std::string FormatPatternStats(const PatternStats& stats) {
  std::string out = "coverage=" +
                    FormatDouble(stats.series_coverage * 100.0, 1) + "%";
  out += " total_dur=" + std::to_string(stats.total_interesting_duration);
  out += " max_dur=" + std::to_string(stats.max_interval_duration);
  out += " mean_ps=" + FormatDouble(stats.mean_periodic_support, 1);
  out += " max_ps=" + std::to_string(stats.max_periodic_support);
  out += " concentration=" +
         FormatDouble(stats.periodic_concentration * 100.0, 1) + "%";
  return out;
}

}  // namespace rpm::analysis
