#include "rpm/analysis/interval_metrics.h"

#include <algorithm>

#include "rpm/core/measures.h"

namespace rpm::analysis {

std::vector<PeriodicInterval> PatternIntervalsOrCompute(
    const RecurringPattern& pattern, const TransactionDatabase& db,
    const RpParams& params) {
  if (!pattern.intervals.empty()) return pattern.intervals;
  return FindInterestingIntervals(db.TimestampsOf(pattern.items), params);
}

std::vector<TimeSpan> NormalizeSpans(std::vector<TimeSpan> spans) {
  std::erase_if(spans,
                [](const TimeSpan& s) { return s.second <= s.first; });
  std::sort(spans.begin(), spans.end());
  std::vector<TimeSpan> merged;
  for (const TimeSpan& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

Timestamp TotalSpanLength(const std::vector<TimeSpan>& spans) {
  Timestamp total = 0;
  for (const TimeSpan& s : spans) total += s.second - s.first;
  return total;
}

Timestamp IntersectionLength(std::vector<TimeSpan> a,
                             std::vector<TimeSpan> b) {
  a = NormalizeSpans(std::move(a));
  b = NormalizeSpans(std::move(b));
  Timestamp total = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Timestamp lo = std::max(a[i].first, b[j].first);
    const Timestamp hi = std::min(a[i].second, b[j].second);
    if (lo < hi) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::vector<TimeSpan> SpansOfIntervals(
    const std::vector<PeriodicInterval>& intervals) {
  std::vector<TimeSpan> spans;
  spans.reserve(intervals.size());
  for (const PeriodicInterval& pi : intervals) {
    spans.emplace_back(pi.begin, pi.end + 1);
  }
  return spans;
}

double WindowRecall(const std::vector<PeriodicInterval>& intervals,
                    const std::vector<TimeSpan>& windows) {
  std::vector<TimeSpan> w = NormalizeSpans(windows);
  const Timestamp denom = TotalSpanLength(w);
  if (denom == 0) return 1.0;
  return static_cast<double>(
             IntersectionLength(SpansOfIntervals(intervals), w)) /
         static_cast<double>(denom);
}

double IntervalPrecision(const std::vector<PeriodicInterval>& intervals,
                         const std::vector<TimeSpan>& windows) {
  std::vector<TimeSpan> spans = NormalizeSpans(SpansOfIntervals(intervals));
  const Timestamp denom = TotalSpanLength(spans);
  if (denom == 0) return 1.0;
  return static_cast<double>(IntersectionLength(spans, windows)) /
         static_cast<double>(denom);
}

double SpanJaccard(const std::vector<PeriodicInterval>& intervals,
                   const std::vector<TimeSpan>& windows) {
  std::vector<TimeSpan> a = NormalizeSpans(SpansOfIntervals(intervals));
  std::vector<TimeSpan> b = NormalizeSpans(windows);
  const Timestamp inter = IntersectionLength(a, b);
  const Timestamp uni = TotalSpanLength(a) + TotalSpanLength(b) - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace rpm::analysis
