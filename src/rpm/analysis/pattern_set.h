// Set-level operations over mining results: containment between models,
// length histograms, ground-truth recovery checks. Used by the Table 8
// bench and the cross-model property tests.

#ifndef RPM_ANALYSIS_PATTERN_SET_H_
#define RPM_ANALYSIS_PATTERN_SET_H_

#include <cstdint>
#include <vector>

#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/core/pattern.h"

namespace rpm::analysis {

/// Itemsets only, canonical order, duplicates removed.
std::vector<Itemset> ItemsetsOf(const std::vector<RecurringPattern>& ps);
std::vector<Itemset> ItemsetsOf(
    const std::vector<rpm::baselines::PeriodicFrequentPattern>& ps);
std::vector<Itemset> ItemsetsOf(
    const std::vector<rpm::baselines::PPattern>& ps);

/// True iff every itemset of `subset` occurs in `superset` (both may be
/// unsorted; duplicates ignored).
bool IsSubsetOf(const std::vector<Itemset>& subset,
                const std::vector<Itemset>& superset);

/// histogram[k] = number of itemsets with exactly k items (index 0 unused).
std::vector<size_t> LengthHistogram(const std::vector<Itemset>& sets);

/// Whether some mined recurring pattern equals `target` AND has an
/// interesting interval overlapping [window_begin, window_end). Used to
/// verify planted generator events are recovered.
bool RecoversPlantedEvent(const std::vector<RecurringPattern>& mined,
                          const Itemset& target, Timestamp window_begin,
                          Timestamp window_end);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_PATTERN_SET_H_
