// Data-driven starting points for the three mining thresholds.
//
// Choosing per / minPS / minRec on unfamiliar data is the practical hurdle
// of the model (the paper itself tunes them per dataset in Table 4). The
// advisor summarises the observed inter-arrival behaviour — per-item IAT
// quantiles over sufficiently-supported items — and derives defensible
// defaults: a `per` that most items' typical gaps satisfy, and a `minPS`
// sized relative to typical item support. These are starting points for
// exploration, not oracles; the rationale string says how each number was
// derived.

#ifndef RPM_ANALYSIS_THRESHOLD_ADVISOR_H_
#define RPM_ANALYSIS_THRESHOLD_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/timeseries/transaction_database.h"

namespace rpm::analysis {

/// Order statistics of one inter-arrival time list.
struct IatStats {
  size_t count = 0;  ///< Number of inter-arrival times (support - 1).
  Timestamp min = 0;
  Timestamp p25 = 0;
  Timestamp median = 0;
  Timestamp p75 = 0;
  Timestamp p90 = 0;
  Timestamp max = 0;
};

/// Stats of a sorted timestamp list's IATs. Zero-initialised result for
/// lists with fewer than two timestamps.
IatStats ComputeIatStats(const TimestampList& timestamps);

struct ThresholdAdvice {
  Timestamp suggested_period = 1;
  uint64_t suggested_min_ps = 1;
  uint64_t suggested_min_rec = 1;
  /// Items that met the support floor and informed the advice.
  size_t items_considered = 0;
  std::string rationale;
};

struct AdvisorOptions {
  /// Items below this support are ignored (too little signal).
  uint64_t min_item_support = 10;
  /// The per-item IAT quantile that `per` should cover (0, 1].
  double period_quantile = 0.9;
  /// minPS = median informative-item support * this fraction.
  double min_ps_support_fraction = 0.05;
};

/// Computes advice from the database. On a database where no item meets
/// the support floor, falls back to conservative defaults (per = median
/// transaction gap, minPS = 2) and says so in the rationale.
ThresholdAdvice AdviseThresholds(const TransactionDatabase& db,
                                 const AdvisorOptions& options = {});

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_THRESHOLD_ADVISOR_H_
