#include "rpm/analysis/pattern_set.h"

#include <algorithm>

namespace rpm::analysis {

namespace {

std::vector<Itemset> Canonicalize(std::vector<Itemset> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return sets;
}

}  // namespace

std::vector<Itemset> ItemsetsOf(const std::vector<RecurringPattern>& ps) {
  std::vector<Itemset> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(p.items);
  return Canonicalize(std::move(out));
}

std::vector<Itemset> ItemsetsOf(
    const std::vector<rpm::baselines::PeriodicFrequentPattern>& ps) {
  std::vector<Itemset> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(p.items);
  return Canonicalize(std::move(out));
}

std::vector<Itemset> ItemsetsOf(
    const std::vector<rpm::baselines::PPattern>& ps) {
  std::vector<Itemset> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(p.items);
  return Canonicalize(std::move(out));
}

bool IsSubsetOf(const std::vector<Itemset>& subset,
                const std::vector<Itemset>& superset) {
  std::vector<Itemset> a = subset;
  std::vector<Itemset> b = superset;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<size_t> LengthHistogram(const std::vector<Itemset>& sets) {
  size_t max_len = 0;
  for (const Itemset& s : sets) max_len = std::max(max_len, s.size());
  std::vector<size_t> hist(max_len + 1, 0);
  for (const Itemset& s : sets) ++hist[s.size()];
  return hist;
}

bool RecoversPlantedEvent(const std::vector<RecurringPattern>& mined,
                          const Itemset& target, Timestamp window_begin,
                          Timestamp window_end) {
  for (const RecurringPattern& p : mined) {
    if (p.items != target) continue;
    for (const PeriodicInterval& pi : p.intervals) {
      if (pi.begin < window_end && pi.end >= window_begin) return true;
    }
  }
  return false;
}

}  // namespace rpm::analysis
