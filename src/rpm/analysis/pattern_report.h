// Human-readable rendering of mining results: Eq. 1 pattern lines, and the
// Table 6 style report where periodic durations print as calendar dates.

#ifndef RPM_ANALYSIS_PATTERN_REPORT_H_
#define RPM_ANALYSIS_PATTERN_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpm/core/pattern.h"
#include "rpm/timeseries/item_dictionary.h"

namespace rpm::analysis {

struct ReportOptions {
  /// When set, interval endpoints render as "YYYY-MM-DD HH:MM" relative to
  /// this epoch (minutes since 1970); otherwise as raw numbers.
  std::optional<int64_t> epoch_minutes;
  /// Keep only the top-k patterns (by the sort key below); 0 = all.
  size_t top_k = 0;
  /// Sort key: true = by support descending, false = by total interesting
  /// interval duration descending.
  bool sort_by_support = true;
  /// Drop patterns shorter than this many items.
  size_t min_pattern_length = 0;
};

/// One formatted line per pattern:
///   "{nuclear, hibaku}  sup=1234 rec=2  [2013-05-06 22:33 .. 2013-05-24
///    22:13]:ps=801  [...]".
std::vector<std::string> FormatPatternReport(
    const std::vector<RecurringPattern>& patterns,
    const ItemDictionary& dict, const ReportOptions& options = {});

/// "{a, b}" or "{12, 40}" when the dictionary is empty.
std::string FormatItemset(const Itemset& items, const ItemDictionary& dict);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_PATTERN_REPORT_H_
