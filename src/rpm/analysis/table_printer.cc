#include "rpm/analysis/table_printer.h"

#include <algorithm>
#include <cctype>
#include <ostream>

namespace rpm::analysis {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRule() { rows_.emplace_back(); }

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != ',' && c != '%' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TablePrinter::Print(std::ostream* out) const {
  const size_t cols = header_.size();
  std::vector<size_t> widths(cols, 0);
  std::vector<bool> numeric(cols, true);
  for (size_t c = 0; c < cols; ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < cols && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!row[c].empty() && !LooksNumeric(row[c])) numeric[c] = false;
    }
  }

  auto print_cells = [&](const std::vector<std::string>& cells,
                         bool align_numeric) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const size_t pad = widths[c] - cell.size();
      if (align_numeric && numeric[c]) {
        *out << std::string(pad, ' ') << cell;
      } else {
        *out << cell << std::string(pad, ' ');
      }
      *out << (c + 1 == cols ? "" : "  ");
    }
    *out << "\n";
  };

  print_cells(header_, /*align_numeric=*/false);
  size_t total = cols > 0 ? 2 * (cols - 1) : 0;
  for (size_t w : widths) total += w;
  *out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    if (row.empty()) {
      *out << std::string(total, '-') << "\n";
    } else {
      print_cells(row, /*align_numeric=*/true);
    }
  }
}

}  // namespace rpm::analysis
