// Machine-readable export of mining results (CSV and JSON), so downstream
// pipelines (plotting, dashboards) can consume discoveries without parsing
// console reports.

#ifndef RPM_ANALYSIS_EXPORT_H_
#define RPM_ANALYSIS_EXPORT_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/item_dictionary.h"

namespace rpm::analysis {

struct ExportOptions {
  /// When set, interval endpoints additionally render as calendar dates
  /// relative to this epoch (minutes since 1970).
  std::optional<int64_t> epoch_minutes;
};

/// One row per (pattern, interval):
///   pattern,support,recurrence,interval_index,begin,end,periodic_support
///   [,begin_date,end_date]
/// Items inside `pattern` are space-separated names (ids if no dictionary).
Status WritePatternsCsv(const std::vector<RecurringPattern>& patterns,
                        const ItemDictionary& dict, std::ostream* out,
                        const ExportOptions& options = {});

/// A JSON array of objects:
///   {"items": [...], "support": N, "recurrence": N,
///    "intervals": [{"begin": N, "end": N, "ps": N}, ...]}
Status WritePatternsJson(const std::vector<RecurringPattern>& patterns,
                         const ItemDictionary& dict, std::ostream* out,
                         const ExportOptions& options = {});

/// JSON string escaping (exposed for tests).
std::string JsonEscape(const std::string& text);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_EXPORT_H_
