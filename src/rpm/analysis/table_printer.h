// Fixed-width console tables for the benchmark harnesses (so every bench
// prints rows shaped like the paper's Tables 5/7/8).

#ifndef RPM_ANALYSIS_TABLE_PRINTER_H_
#define RPM_ANALYSIS_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rpm::analysis {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  /// Renders with 2-space column gaps; numbers are right-aligned when the
  /// entire column (header aside) parses as numeric.
  void Print(std::ostream* out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector == rule.
};

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_TABLE_PRINTER_H_
