#include "rpm/analysis/threshold_advisor.h"

#include <algorithm>
#include <cmath>

#include "rpm/common/logging.h"
#include "rpm/core/measures.h"

namespace rpm::analysis {

namespace {

/// Nearest-rank quantile of a sorted vector (q in [0, 1]).
Timestamp QuantileOfSorted(const std::vector<Timestamp>& sorted, double q) {
  RPM_DCHECK(!sorted.empty());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(std::llround(pos))];
}

}  // namespace

IatStats ComputeIatStats(const TimestampList& timestamps) {
  IatStats stats;
  std::vector<Timestamp> iats = InterArrivalTimes(timestamps);
  if (iats.empty()) return stats;
  std::sort(iats.begin(), iats.end());
  stats.count = iats.size();
  stats.min = iats.front();
  stats.p25 = QuantileOfSorted(iats, 0.25);
  stats.median = QuantileOfSorted(iats, 0.50);
  stats.p75 = QuantileOfSorted(iats, 0.75);
  stats.p90 = QuantileOfSorted(iats, 0.90);
  stats.max = iats.back();
  return stats;
}

ThresholdAdvice AdviseThresholds(const TransactionDatabase& db,
                                 const AdvisorOptions& options) {
  ThresholdAdvice advice;
  if (db.empty()) {
    advice.rationale = "empty database; defaults";
    return advice;
  }

  // Per-item timestamp lists in one scan.
  std::vector<TimestampList> lists(db.ItemUniverseSize());
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) lists[item].push_back(tr.ts);
  }

  std::vector<Timestamp> item_p90s;
  std::vector<uint64_t> supports;
  for (const TimestampList& ts : lists) {
    if (ts.size() < options.min_item_support) continue;
    std::vector<Timestamp> iats = InterArrivalTimes(ts);
    std::sort(iats.begin(), iats.end());
    item_p90s.push_back(QuantileOfSorted(iats, options.period_quantile));
    supports.push_back(ts.size());
  }
  advice.items_considered = item_p90s.size();

  if (item_p90s.empty()) {
    // Fallback: median gap between consecutive transactions.
    std::vector<Timestamp> gaps;
    for (size_t i = 1; i < db.size(); ++i) {
      gaps.push_back(db.transaction(i).ts - db.transaction(i - 1).ts);
    }
    std::sort(gaps.begin(), gaps.end());
    advice.suggested_period =
        gaps.empty() ? 1 : std::max<Timestamp>(1, QuantileOfSorted(gaps, 0.5));
    advice.suggested_min_ps = 2;
    advice.rationale =
        "no item reached the support floor of " +
        std::to_string(options.min_item_support) +
        "; per = median transaction gap, minPS = 2 (conservative defaults)";
    return advice;
  }

  std::sort(item_p90s.begin(), item_p90s.end());
  std::sort(supports.begin(), supports.end());
  advice.suggested_period =
      std::max<Timestamp>(1, QuantileOfSorted(item_p90s, 0.5));
  const uint64_t median_support = supports[(supports.size() - 1) / 2];
  advice.suggested_min_ps = std::max<uint64_t>(
      2, static_cast<uint64_t>(std::llround(
             options.min_ps_support_fraction *
             static_cast<double>(median_support))));
  advice.suggested_min_rec = 1;
  advice.rationale =
      "per = median of per-item p" +
      std::to_string(static_cast<int>(options.period_quantile * 100)) +
      " inter-arrival times over " + std::to_string(item_p90s.size()) +
      " items with support >= " + std::to_string(options.min_item_support) +
      "; minPS = " +
      std::to_string(
          static_cast<int>(options.min_ps_support_fraction * 100)) +
      "% of the median informative-item support (" +
      std::to_string(median_support) + ")";
  return advice;
}

}  // namespace rpm::analysis
