#include "rpm/analysis/export.h"

#include <ostream>

#include "rpm/common/civil_time.h"
#include "rpm/common/csv.h"

namespace rpm::analysis {

namespace {

std::string ItemNames(const RecurringPattern& p, const ItemDictionary& dict) {
  std::string out;
  for (size_t i = 0; i < p.items.size(); ++i) {
    if (i > 0) out += ' ';
    out += dict.empty() ? std::to_string(p.items[i])
                        : dict.NameOf(p.items[i]);
  }
  return out;
}

}  // namespace

Status WritePatternsCsv(const std::vector<RecurringPattern>& patterns,
                        const ItemDictionary& dict, std::ostream* out,
                        const ExportOptions& options) {
  CsvWriter writer(out);
  std::vector<std::string> header = {"pattern",        "support",
                                     "recurrence",     "interval_index",
                                     "begin",          "end",
                                     "periodic_support"};
  if (options.epoch_minutes.has_value()) {
    header.push_back("begin_date");
    header.push_back("end_date");
  }
  writer.WriteRow(header);
  for (const RecurringPattern& p : patterns) {
    const std::string names = ItemNames(p, dict);
    for (size_t i = 0; i < p.intervals.size(); ++i) {
      const PeriodicInterval& pi = p.intervals[i];
      std::vector<std::string> row = {
          names,
          std::to_string(p.support),
          std::to_string(p.recurrence()),
          std::to_string(i),
          std::to_string(pi.begin),
          std::to_string(pi.end),
          std::to_string(pi.periodic_support)};
      if (options.epoch_minutes.has_value()) {
        row.push_back(FormatMinuteOffset(pi.begin, *options.epoch_minutes));
        row.push_back(FormatMinuteOffset(pi.end, *options.epoch_minutes));
      }
      writer.WriteRow(row);
    }
  }
  if (!*out) return Status::IOError("stream error while writing CSV");
  return Status::OK();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status WritePatternsJson(const std::vector<RecurringPattern>& patterns,
                         const ItemDictionary& dict, std::ostream* out,
                         const ExportOptions& options) {
  *out << "[\n";
  for (size_t p_idx = 0; p_idx < patterns.size(); ++p_idx) {
    const RecurringPattern& p = patterns[p_idx];
    *out << "  {\"items\": [";
    for (size_t i = 0; i < p.items.size(); ++i) {
      if (i > 0) *out << ", ";
      if (dict.empty()) {
        *out << p.items[i];
      } else {
        *out << '"' << JsonEscape(dict.NameOf(p.items[i])) << '"';
      }
    }
    *out << "], \"support\": " << p.support
         << ", \"recurrence\": " << p.recurrence() << ", \"intervals\": [";
    for (size_t i = 0; i < p.intervals.size(); ++i) {
      const PeriodicInterval& pi = p.intervals[i];
      if (i > 0) *out << ", ";
      *out << "{\"begin\": " << pi.begin << ", \"end\": " << pi.end
           << ", \"ps\": " << pi.periodic_support;
      if (options.epoch_minutes.has_value()) {
        *out << ", \"begin_date\": \""
             << FormatMinuteOffset(pi.begin, *options.epoch_minutes)
             << "\", \"end_date\": \""
             << FormatMinuteOffset(pi.end, *options.epoch_minutes) << '"';
      }
      *out << "}";
    }
    *out << "]}" << (p_idx + 1 < patterns.size() ? "," : "") << "\n";
  }
  *out << "]\n";
  if (!*out) return Status::IOError("stream error while writing JSON");
  return Status::OK();
}

}  // namespace rpm::analysis
