// Item frequency time series (the paper's Figure 8: daily hashtag
// frequencies around the discovered periodic durations).

#ifndef RPM_ANALYSIS_FREQUENCY_SERIES_H_
#define RPM_ANALYSIS_FREQUENCY_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/timeseries/transaction_database.h"

namespace rpm::analysis {

/// Counts of transactions containing `item`, bucketed by
/// floor(ts / bucket_minutes). Index 0 is the bucket of the database's
/// first timestamp; trailing empty buckets up to the last timestamp are
/// included (zeroes).
std::vector<size_t> BucketedFrequency(const TransactionDatabase& db,
                                      ItemId item,
                                      Timestamp bucket_minutes = 1440);

/// Same, for the co-occurrence of a whole itemset.
std::vector<size_t> BucketedPatternFrequency(
    const TransactionDatabase& db, const Itemset& pattern,
    Timestamp bucket_minutes = 1440);

/// Renders a frequency series as a fixed-height ASCII sparkline block for
/// console output (one row of buckets, scaled to `height` levels using
/// " .:-=+*#%@" style fill). Empty series renders as an empty string.
std::string RenderAsciiSeries(const std::vector<size_t>& series,
                              size_t max_width = 100);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_FREQUENCY_SERIES_H_
