#include "rpm/analysis/frequency_series.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm::analysis {

namespace {

template <typename Pred>
std::vector<size_t> Bucketed(const TransactionDatabase& db,
                             Timestamp bucket_minutes, Pred&& contains) {
  RPM_CHECK(bucket_minutes > 0);
  std::vector<size_t> series;
  if (db.empty()) return series;
  const Timestamp base = db.start_ts() / bucket_minutes;
  const size_t buckets = static_cast<size_t>(
      db.end_ts() / bucket_minutes - base + 1);
  series.assign(buckets, 0);
  for (const Transaction& tr : db.transactions()) {
    if (contains(tr)) {
      series[static_cast<size_t>(tr.ts / bucket_minutes - base)] += 1;
    }
  }
  return series;
}

}  // namespace

std::vector<size_t> BucketedFrequency(const TransactionDatabase& db,
                                      ItemId item,
                                      Timestamp bucket_minutes) {
  return Bucketed(db, bucket_minutes, [item](const Transaction& tr) {
    return std::binary_search(tr.items.begin(), tr.items.end(), item);
  });
}

std::vector<size_t> BucketedPatternFrequency(const TransactionDatabase& db,
                                             const Itemset& pattern,
                                             Timestamp bucket_minutes) {
  return Bucketed(db, bucket_minutes, [&pattern](const Transaction& tr) {
    return ContainsAll(tr.items, pattern);
  });
}

std::string RenderAsciiSeries(const std::vector<size_t>& series,
                              size_t max_width) {
  if (series.empty() || max_width == 0) return "";
  static constexpr char kLevels[] = " .:-=+*#%@";
  static constexpr size_t kNumLevels = sizeof(kLevels) - 1;  // 10 fills.

  // Downsample to max_width buckets by taking bucket maxima.
  const size_t width = std::min(series.size(), max_width);
  std::vector<size_t> sampled(width, 0);
  for (size_t i = 0; i < series.size(); ++i) {
    size_t slot = i * width / series.size();
    sampled[slot] = std::max(sampled[slot], series[i]);
  }
  const size_t peak = *std::max_element(sampled.begin(), sampled.end());
  std::string out;
  out.reserve(width);
  for (size_t v : sampled) {
    size_t level =
        peak == 0 ? 0 : (v * (kNumLevels - 1) + peak - 1) / peak;
    if (v > 0 && level == 0) level = 1;
    out += kLevels[level];
  }
  return out;
}

}  // namespace rpm::analysis
