// Quantitative agreement between discovered periodic-intervals and
// reference time windows (planted generator events, labelled incidents).
//
// Where the paper argues recovery anecdotally (Table 6), a synthetic
// reproduction can score it: recall = how much of the reference windows the
// discovered intervals cover; precision = how much of the discovered
// intervals lies inside reference windows.
//
// Conventions: reference windows are half-open [begin, end) in time units;
// a PeriodicInterval [b, e] covers the half-open span [b, e+1).

#ifndef RPM_ANALYSIS_INTERVAL_METRICS_H_
#define RPM_ANALYSIS_INTERVAL_METRICS_H_

#include <utility>
#include <vector>

#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/transaction_database.h"
#include "rpm/timeseries/types.h"

namespace rpm::analysis {

/// The pattern's own interval list when it carries one, else IPI^X
/// recomputed from the database under `params`. Engine QueryResults always
/// thread the mined intervals through, so the recompute only fires for
/// patterns that arrived without them (hand-built fixtures, external
/// imports) — callers should prefer this over reaching for
/// FindInterestingIntervals directly.
std::vector<PeriodicInterval> PatternIntervalsOrCompute(
    const RecurringPattern& pattern, const TransactionDatabase& db,
    const RpParams& params);

/// Half-open [begin, end) span.
using TimeSpan = std::pair<Timestamp, Timestamp>;

/// Sorts, drops empty spans, and merges overlapping/adjacent spans.
std::vector<TimeSpan> NormalizeSpans(std::vector<TimeSpan> spans);

/// Total length of (normalised) spans.
Timestamp TotalSpanLength(const std::vector<TimeSpan>& spans);

/// Length of the intersection of two span sets (each normalised
/// internally).
Timestamp IntersectionLength(std::vector<TimeSpan> a,
                             std::vector<TimeSpan> b);

/// Converts intervals to half-open spans [begin, end+1).
std::vector<TimeSpan> SpansOfIntervals(
    const std::vector<PeriodicInterval>& intervals);

/// |intervals ∩ windows| / |windows|; 1.0 when windows are empty.
double WindowRecall(const std::vector<PeriodicInterval>& intervals,
                    const std::vector<TimeSpan>& windows);

/// |intervals ∩ windows| / |intervals|; 1.0 when intervals are empty.
double IntervalPrecision(const std::vector<PeriodicInterval>& intervals,
                         const std::vector<TimeSpan>& windows);

/// Jaccard similarity |∩| / |∪|; 1.0 when both sides are empty.
double SpanJaccard(const std::vector<PeriodicInterval>& intervals,
                   const std::vector<TimeSpan>& windows);

}  // namespace rpm::analysis

#endif  // RPM_ANALYSIS_INTERVAL_METRICS_H_
