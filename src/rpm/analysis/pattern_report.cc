#include "rpm/analysis/pattern_report.h"

#include <algorithm>

#include "rpm/common/civil_time.h"

namespace rpm::analysis {

std::string FormatItemset(const Itemset& items, const ItemDictionary& dict) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += dict.empty() ? std::to_string(items[i]) : dict.NameOf(items[i]);
  }
  out += "}";
  return out;
}

namespace {

Timestamp TotalInterestingDuration(const RecurringPattern& p) {
  Timestamp total = 0;
  for (const PeriodicInterval& pi : p.intervals) total += pi.Duration();
  return total;
}

std::string FormatEndpoint(Timestamp ts,
                           const std::optional<int64_t>& epoch) {
  if (epoch.has_value()) return FormatMinuteOffset(ts, *epoch);
  return std::to_string(ts);
}

}  // namespace

std::vector<std::string> FormatPatternReport(
    const std::vector<RecurringPattern>& patterns,
    const ItemDictionary& dict, const ReportOptions& options) {
  std::vector<RecurringPattern> selected;
  for (const RecurringPattern& p : patterns) {
    if (p.items.size() >= options.min_pattern_length) selected.push_back(p);
  }
  if (options.sort_by_support) {
    std::stable_sort(selected.begin(), selected.end(),
                     [](const RecurringPattern& a, const RecurringPattern& b) {
                       return a.support > b.support;
                     });
  } else {
    std::stable_sort(selected.begin(), selected.end(),
                     [](const RecurringPattern& a, const RecurringPattern& b) {
                       return TotalInterestingDuration(a) >
                              TotalInterestingDuration(b);
                     });
  }
  if (options.top_k > 0 && selected.size() > options.top_k) {
    selected.resize(options.top_k);
  }

  std::vector<std::string> lines;
  lines.reserve(selected.size());
  for (const RecurringPattern& p : selected) {
    std::string line = FormatItemset(p.items, dict);
    line += "  sup=" + std::to_string(p.support) +
            " rec=" + std::to_string(p.recurrence()) + " ";
    for (const PeriodicInterval& pi : p.intervals) {
      line += " [" + FormatEndpoint(pi.begin, options.epoch_minutes) +
              " .. " + FormatEndpoint(pi.end, options.epoch_minutes) +
              "]:ps=" + std::to_string(pi.periodic_support);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace rpm::analysis
