#include "rpm/tools/serve_flags.h"

namespace rpm::tools {

void ServeFlags::Register(FlagParser* parser) {
  parser->AddUint64("port", port,
                    "loopback TCP port; 0 binds an ephemeral port "
                    "(printed on startup)",
                    &port);
  parser->AddString("config", config,
                    "per-tenant quota file, one JSON object per line "
                    "(docs/API.md); absent tenants get the defaults",
                    &config);
  parser->AddUint64("max-sessions", max_sessions,
                    "concurrent client connections; excess connects are "
                    "turned away with UNAVAILABLE",
                    &max_sessions);
  parser->AddUint64("global-max-concurrent", global_max_concurrent,
                    "queries executing at once across all tenants",
                    &global_max_concurrent);
  parser->AddUint64("global-max-queued", global_max_queued,
                    "admission waiters across all tenants before global "
                    "OVERLOADED rejections",
                    &global_max_queued);
  parser->AddUint64("drain-deadline-ms", drain_deadline_ms,
                    "grace period for open sessions to flush after "
                    "SIGINT/SIGTERM before force-close",
                    &drain_deadline_ms);
  parser->AddUint64("retry-after-base-ms", retry_after_base_ms,
                    "base of the load-proportional retry_after_ms hint "
                    "on OVERLOADED responses",
                    &retry_after_base_ms);
  parser->AddUint64("cache-entries", cache_entries,
                    "completed-result cache capacity (FIFO-evicted)",
                    &cache_entries);
}

Result<serve::QueryService::Options> ServeFlags::ToServiceOptions() const {
  if (global_max_concurrent == 0) {
    return Status::InvalidArgument(
        "--global-max-concurrent must be >= 1");
  }
  serve::QueryService::Options options;
  options.admission.global_max_concurrent = global_max_concurrent;
  options.admission.global_max_queued = global_max_queued;
  options.admission.retry_after_base_ms =
      static_cast<int64_t>(retry_after_base_ms);
  options.cache_entries = cache_entries;
  return options;
}

Result<serve::Server::Options> ServeFlags::ToServerOptions() const {
  if (port > 65535) {
    return Status::InvalidArgument("--port must be <= 65535");
  }
  if (max_sessions == 0) {
    return Status::InvalidArgument("--max-sessions must be >= 1");
  }
  serve::Server::Options options;
  options.port = static_cast<uint16_t>(port);
  options.max_sessions = max_sessions;
  options.drain_deadline_ms = static_cast<int64_t>(drain_deadline_ms);
  return options;
}

}  // namespace rpm::tools
