// One definition of the mining-threshold flags for every entry point.
//
// `rpminer mine`, `rpminer verify --fixed-params`, `rpminer compare` and
// the --queries multi-query path had been growing their own copies of the
// per/minPS/minRec flag set; this header is now the single place the flag
// names, defaults and the minPS resolution rule live, so the subcommands
// cannot drift apart (defaults are regression-pinned in
// tests/mining_flags_test.cc).

#ifndef RPM_TOOLS_MINING_FLAGS_H_
#define RPM_TOOLS_MINING_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "rpm/common/flags.h"
#include "rpm/common/status.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query.h"

namespace rpm::tools {

/// The shared threshold/filter flag set with its canonical defaults.
/// Mutate fields *before* Register() to present different defaults
/// (compare keeps its dataset-scale per/min-ps-pct) — the resolution
/// rules stay shared either way.
struct MiningQueryFlags {
  int64_t per = 1;           ///< --per
  uint64_t min_ps = 0;       ///< --min-ps (0 resolves to 1)
  double min_ps_pct = -1.0;  ///< --min-ps-pct (>= 0 overrides --min-ps)
  uint64_t min_rec = 1;      ///< --min-rec
  uint64_t tolerance = 0;    ///< --tolerance
  uint64_t top_k = 0;        ///< --top-k
  uint64_t max_len = 0;      ///< --max-length
  bool closed = false;       ///< --closed
  bool maximal = false;      ///< --maximal
  // Resource governance (DESIGN.md §7); 0 = unlimited.
  uint64_t timeout_ms = 0;     ///< --timeout-ms
  uint64_t max_memory_mb = 0;  ///< --max-memory-mb
  uint64_t max_patterns = 0;   ///< --max-patterns
  // Sliding-window model (--backend=windowed); 0 = not windowed.
  int64_t window = 0;  ///< --window
  uint64_t delta = 0;  ///< --delta

  /// Registers all fourteen flags on `parser`, using the current field
  /// values as the advertised defaults. `this` must outlive
  /// parser.Parse().
  void Register(FlagParser* parser);

  /// Resolves the (parsed) fields against a database of `db_size`
  /// transactions: --min-ps-pct >= 0 sets minPS = ceil(pct/100 * db_size),
  /// a zero minPS becomes 1, and the result is validated. The returned
  /// query's params.min_rec is the flag value even when top_k > 0 (the
  /// descent overrides it, matching `rpminer mine`).
  Result<engine::Query> ToQuery(size_t db_size) const;
};

/// One resolved line of a --queries file.
struct ParsedQueryLine {
  engine::Query query;
  engine::BackendKind backend = engine::BackendKind::kSequential;
  /// Worker threads for the parallel backend (engine::ExecOptions).
  uint64_t threads = 0;
};

/// Parses one --queries file line — the `rpminer mine` threshold flags
/// plus `--backend=sequential|parallel|streaming` and `--threads=N` —
/// with exactly the shared defaults and minPS resolution. Tokens are
/// whitespace-separated (no quoting; `--flag=value` form recommended).
/// The caller strips blank lines and '#' comments.
Result<ParsedQueryLine> ParseMiningQuery(const std::string& line,
                                         size_t db_size);

}  // namespace rpm::tools

#endif  // RPM_TOOLS_MINING_FLAGS_H_
