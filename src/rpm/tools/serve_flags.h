// One definition of the `rpminer serve` flag set, mining_flags.h-style:
// names, defaults and the translation into serve/ option structs live
// here and nowhere else, with the defaults regression-pinned in
// tests/serve_flags_test.cc.

#ifndef RPM_TOOLS_SERVE_FLAGS_H_
#define RPM_TOOLS_SERVE_FLAGS_H_

#include <cstdint>
#include <string>

#include "rpm/common/flags.h"
#include "rpm/common/status.h"
#include "rpm/serve/server.h"
#include "rpm/serve/service.h"

namespace rpm::tools {

/// The serve flag set with its canonical defaults. Tenant-quota defaults
/// (max_concurrent=2, max_queued=8, deadline_ceiling_ms=30000,
/// memory_ceiling_mb=256, max_patterns=0) live in serve::TenantQuotas and
/// are overridden per tenant by --config.
struct ServeFlags {
  uint64_t port = 0;                  ///< --port (0 = ephemeral)
  std::string config;                 ///< --config (tenant quota file)
  uint64_t max_sessions = 64;         ///< --max-sessions
  uint64_t global_max_concurrent = 8; ///< --global-max-concurrent
  uint64_t global_max_queued = 32;    ///< --global-max-queued
  uint64_t drain_deadline_ms = 5000;  ///< --drain-deadline-ms
  uint64_t retry_after_base_ms = 50;  ///< --retry-after-base-ms
  uint64_t cache_entries = 64;        ///< --cache-entries

  /// Registers all eight flags on `parser`, using the current field
  /// values as the advertised defaults. `this` must outlive Parse().
  void Register(FlagParser* parser);

  /// Validates ranges (port fits uint16, nonzero concurrency) and
  /// translates to the serve option structs.
  Result<serve::QueryService::Options> ToServiceOptions() const;
  Result<serve::Server::Options> ToServerOptions() const;
};

}  // namespace rpm::tools

#endif  // RPM_TOOLS_SERVE_FLAGS_H_
