// SIGINT/SIGTERM -> CancellationToken bridge for long-running rpminer
// subcommands (mine, verify, serve).
//
// First signal: cancel. The installed handler only performs async-signal-
// safe work — one atomic counter bump and CancellationToken::Cancel (an
// atomic store) — and the command's normal machinery turns that into a
// deterministic, prefix-committed early stop: mine flushes the committed
// pattern prefix and exits 2 (CANCELLED), verify reports the trials
// completed so far, serve drains. Second signal: the user means it —
// hard _exit(130) without waiting for the drain.
//
// Scoped RAII: handlers are installed on construction and the previous
// dispositions restored on destruction, so tests (and nested uses) cannot
// leak a handler pointing at a dead token.

#ifndef RPM_TOOLS_SIGNAL_CANCEL_H_
#define RPM_TOOLS_SIGNAL_CANCEL_H_

#include <csignal>

#include "rpm/core/cancellation.h"

namespace rpm::tools {

class ScopedSignalCancellation {
 public:
  /// Routes SIGINT and SIGTERM to `token` (not owned, must outlive the
  /// scope). Only one scope may be live at a time.
  explicit ScopedSignalCancellation(CancellationToken* token);
  ~ScopedSignalCancellation();

  ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
  ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) =
      delete;

  /// True once a signal has been delivered in this scope.
  static bool signal_received();

 private:
  struct sigaction old_int_;
  struct sigaction old_term_;
};

}  // namespace rpm::tools

#endif  // RPM_TOOLS_SIGNAL_CANCEL_H_
