// Entry point of the `rpminer` command-line tool.

#include <iostream>

#include "rpm/tools/commands.h"

int main(int argc, char** argv) {
  return rpm::tools::RunRpminer(argc, argv, std::cout, std::cerr);
}
