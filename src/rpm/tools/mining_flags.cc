#include "rpm/tools/mining_flags.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace rpm::tools {

void MiningQueryFlags::Register(FlagParser* parser) {
  parser->AddInt64("per", per, "period threshold (Definition 4)", &per);
  parser->AddUint64("min-ps", min_ps, "absolute minPS (Definition 7)",
                    &min_ps);
  parser->AddDouble("min-ps-pct", min_ps_pct,
                    "minPS as percent of |TDB| (overrides --min-ps)",
                    &min_ps_pct);
  parser->AddUint64("min-rec", min_rec, "minRec (Definition 9)", &min_rec);
  parser->AddUint64(
      "tolerance", tolerance,
      "noise tolerance: over-period gaps absorbed per interval", &tolerance);
  parser->AddUint64("top-k", top_k,
                    "mine the k most-recurring patterns instead of using "
                    "--min-rec",
                    &top_k);
  parser->AddUint64("max-length", max_len,
                    "pattern length cap (0 = unlimited)", &max_len);
  parser->AddBool("closed", closed, "keep only closed patterns", &closed);
  parser->AddBool("maximal", maximal, "keep only maximal patterns",
                  &maximal);
  parser->AddUint64("timeout-ms", timeout_ms,
                    "wall-clock deadline per query; over-deadline queries "
                    "stop with a deterministic partial result (0 = none)",
                    &timeout_ms);
  parser->AddUint64("max-memory-mb", max_memory_mb,
                    "budget for tracked mining memory (RP-tree nodes + "
                    "timestamps); 0 = unlimited",
                    &max_memory_mb);
  parser->AddUint64("max-patterns", max_patterns,
                    "stop after this many patterns (deterministic prefix "
                    "of the canonical order); 0 = unlimited",
                    &max_patterns);
  parser->AddInt64("window", window,
                   "sliding-window width in time units for "
                   "--backend=windowed (0 = not windowed)",
                   &window);
  parser->AddUint64("delta", delta,
                    "transactions per incremental batch for "
                    "--backend=windowed (0 = one batch)",
                    &delta);
}

Result<engine::Query> MiningQueryFlags::ToQuery(size_t db_size) const {
  engine::Query query;
  query.params.period = per;
  uint64_t resolved_min_ps = min_ps;
  if (min_ps_pct >= 0.0) {
    resolved_min_ps = static_cast<uint64_t>(
        std::ceil(min_ps_pct / 100.0 * static_cast<double>(db_size)));
  }
  if (resolved_min_ps == 0) resolved_min_ps = 1;
  query.params.min_ps = resolved_min_ps;
  query.params.min_rec = min_rec;
  query.params.max_gap_violations = static_cast<uint32_t>(tolerance);
  query.top_k = top_k;
  query.max_pattern_length = max_len;
  query.closed = closed;
  query.maximal = maximal;
  query.limits.timeout_ms = static_cast<int64_t>(timeout_ms);
  query.limits.memory_budget_bytes = max_memory_mb * 1024 * 1024;
  query.limits.max_patterns = max_patterns;
  query.window = window;
  query.delta = delta;
  RPM_RETURN_NOT_OK(query.Validate());
  return query;
}

Result<ParsedQueryLine> ParseMiningQuery(const std::string& line,
                                         size_t db_size) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  for (std::string token; stream >> token;) tokens.push_back(token);

  // Reuse the real parser so a query line accepts exactly the syntax (and
  // rejects exactly the typos) the command line would.
  FlagParser parser("query", "one --queries file line");
  MiningQueryFlags flags;
  flags.Register(&parser);
  std::string backend_name = "sequential";
  uint64_t threads = 0;
  parser.AddString("backend", backend_name,
                   "executor: sequential|parallel|streaming|windowed",
                   &backend_name);
  parser.AddUint64("threads", threads,
                   "parallel-backend workers (0 = hardware threads)",
                   &threads);

  std::vector<const char*> argv;
  argv.reserve(tokens.size() + 1);
  argv.push_back("query");  // Parse() skips argv[0].
  for (const std::string& token : tokens) argv.push_back(token.c_str());
  RPM_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data()));
  if (!parser.positional().empty()) {
    return Status::InvalidArgument("query line has non-flag token '" +
                                   parser.positional().front() + "'");
  }

  ParsedQueryLine parsed;
  RPM_ASSIGN_OR_RETURN(parsed.query, flags.ToQuery(db_size));
  RPM_ASSIGN_OR_RETURN(parsed.backend, engine::ParseBackend(backend_name));
  parsed.threads = threads;
  return parsed;
}

}  // namespace rpm::tools
