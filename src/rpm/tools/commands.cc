#include "rpm/tools/commands.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>

#include "rpm/analysis/export.h"
#include "rpm/analysis/pattern_report.h"
#include "rpm/analysis/pattern_stats.h"
#include "rpm/analysis/threshold_advisor.h"
#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/common/civil_time.h"
#include "rpm/common/cpu_features.h"
#include "rpm/common/flags.h"
#include "rpm/engine/session.h"
#include "rpm/gen/paper_datasets.h"
#include "rpm/engine/snapshot_registry.h"
#include "rpm/serve/server.h"
#include "rpm/serve/service.h"
#include "rpm/timeseries/database_stats.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/tools/mining_flags.h"
#include "rpm/tools/serve_flags.h"
#include "rpm/tools/signal_cancel.h"
#include "rpm/verify/fault_injection.h"
#include "rpm/verify/harness.h"

namespace rpm::tools {

namespace {

using engine::BackendKind;
using engine::DatasetSnapshot;
using engine::ExecOptions;
using engine::Query;
using engine::QueryResult;
using engine::QuerySession;

/// Every subcommand loads through the snapshot layer; `Snapshot` is just
/// the error-message plumbing around DatasetSnapshot::Load.
Result<std::shared_ptr<const DatasetSnapshot>> LoadSnapshot(
    const std::string& path, const std::string& format) {
  return DatasetSnapshot::Load(path, format);
}

/// Resolves --epoch into minutes since 1970 (empty -> no epoch).
Result<std::optional<int64_t>> ResolveEpoch(const std::string& epoch) {
  if (epoch.empty()) return std::optional<int64_t>{};
  RPM_ASSIGN_OR_RETURN(CivilMinute cm, ParseCivilMinute(epoch));
  return std::optional<int64_t>{MinutesFromCivil(cm)};
}

Status WriteResults(const std::vector<RecurringPattern>& patterns,
                    const ItemDictionary& dict,
                    const std::string& output_format,
                    const std::optional<int64_t>& epoch, std::ostream* out) {
  if (output_format == "text") {
    analysis::ReportOptions options;
    options.epoch_minutes = epoch;
    for (const std::string& line :
         analysis::FormatPatternReport(patterns, dict, options)) {
      *out << line << "\n";
    }
    return Status::OK();
  }
  analysis::ExportOptions options;
  options.epoch_minutes = epoch;
  if (output_format == "csv") {
    return analysis::WritePatternsCsv(patterns, dict, out, options);
  }
  if (output_format == "json") {
    return analysis::WritePatternsJson(patterns, dict, out, options);
  }
  return Status::InvalidArgument("unknown --output-format '" +
                                 output_format +
                                 "' (expected text, csv or json)");
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 2;
}

/// The `mine` stderr summary (pinned by cli_test.cc): pattern count,
/// params, wall clock, and the worker/merge-kernel diagnostics.
void PrintMineSummary(const Query& query, const QueryResult& result,
                      std::ostream& err) {
  if (query.top_k > 0) {
    err << "top-k: " << result.patterns.size() << " patterns at minRec="
        << result.top_k_final_min_rec << " after " << result.top_k_rounds
        << " round(s)\n";
    return;
  }
  err << result.patterns.size() << " recurring patterns ("
      << query.params.ToString() << ") in " << result.stats.total_seconds
      << "s";
  if (result.stats.threads_used > 1) {
    err << " [" << result.stats.threads_used << " threads, mine "
        << result.stats.mine_seconds << "s wall / "
        << result.stats.mine_cpu_seconds << "s cpu]";
  }
  err << " [merge " << result.stats.merge_invocations << " calls / "
      << result.stats.runs_merged << " runs / "
      << result.stats.timestamps_merged << " ts, scratch peak "
      << result.stats.scratch_bytes_peak << " B / total "
      << result.stats.scratch_bytes_total << " B]";
  err << " [gate " << SimdLevelName(ActiveSimdLevel()) << " "
      << result.stats.gate_lists_scanned << " lists / "
      << result.stats.gate_gaps_scanned << " gaps";
  if (result.stats.gate_gaps_scanned > 0) {
    err << ", " << (100 * result.stats.gate_gaps_simd /
                    result.stats.gate_gaps_scanned)
        << "% simd";
  }
  err << "]";
  if (result.stats.tree_build_threads > 1) {
    err << " [tree build " << result.stats.tree_build_threads << " threads, "
        << result.stats.tree_partials_merged << " partials folded in "
        << result.stats.tree_merge_seconds << "s]";
  }
  if (result.tree_reused) err << " [tree reused]";
  if (result.backend == "windowed") {
    err << " [windowed " << result.windowed.deltas_applied << " deltas / "
        << result.windowed.timestamps_appended << " appended / "
        << result.windowed.timestamps_retired << " retired / "
        << result.windowed.nodes_retired << " nodes retired / "
        << result.windowed.compactions << " compactions]";
  }
  err << "\n";
}

/// The --queries=FILE path: N query lines against ONE snapshot and ONE
/// planner, emitted as a single JSON document. Each record embeds the
/// query's patterns exactly as `mine --output-format=json` would print
/// them (byte-identical — asserted by cli_test.cc), plus the planner
/// telemetry that shows tree builds being shared across queries.
int RunMultiQuery(QuerySession& session, const std::string& input,
                  const std::string& queries_path,
                  const std::optional<int64_t>& epoch,
                  const CancellationToken* cancel, std::ostream& out,
                  std::ostream& err) {
  std::ifstream file(queries_path);
  if (!file) {
    return Fail(err, Status::IOError("cannot open --queries file '" +
                                     queries_path + "'"));
  }
  struct QueryLine {
    size_t number = 0;
    std::string text;
  };
  std::vector<QueryLine> lines;
  std::string raw;
  for (size_t number = 1; std::getline(file, raw); ++number) {
    const size_t first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    lines.push_back({number, raw});
  }
  if (lines.empty()) {
    return Fail(err, Status::InvalidArgument("--queries file '" +
                                             queries_path +
                                             "' has no query lines"));
  }

  analysis::ExportOptions export_options;
  export_options.epoch_minutes = epoch;
  size_t failed_queries = 0;
  out << "{\n";
  out << "  \"input\": \"" << analysis::JsonEscape(input) << "\",\n";
  out << "  \"transactions\": " << session.snapshot().size() << ",\n";
  out << "  \"queries\": [\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string line_tag =
        "--queries line " + std::to_string(lines[i].number) + ": ";
    Result<ParsedQueryLine> parsed =
        ParseMiningQuery(lines[i].text, session.snapshot().size());
    if (!parsed.ok()) {
      return Fail(err, Status::InvalidArgument(
                           line_tag + parsed.status().message()));
    }
    ExecOptions exec;
    exec.threads = parsed->threads;
    parsed->query.cancel = cancel;
    Result<QueryResult> result =
        session.Run(parsed->query, parsed->backend, exec);
    if (!result.ok()) {
      return Fail(err, Status::InvalidArgument(
                           line_tag + result.status().message()));
    }
    std::ostringstream patterns_json;
    if (Status s = analysis::WritePatternsJson(
            result->patterns, session.snapshot().dictionary(),
            &patterns_json, export_options);
        !s.ok()) {
      return Fail(err, s);
    }
    out << "    {\n";
    out << "      \"query\": \""
        << analysis::JsonEscape(parsed->query.ToString()) << "\",\n";
    out << "      \"backend\": \"" << result->backend << "\",\n";
    out << "      \"tree_reused\": "
        << (result->tree_reused ? "true" : "false") << ",\n";
    out << "      \"tree_builds\": " << result->session_tree_builds
        << ",\n";
    out << "      \"status\": \""
        << StatusCodeToString(result->status.code()) << "\",\n";
    out << "      \"truncated\": " << (result->truncated ? "true" : "false")
        << ",\n";
    out << "      \"patterns_found\": " << result->patterns.size() << ",\n";
    if (parsed->query.top_k > 0) {
      out << "      \"top_k_rounds\": " << result->top_k_rounds << ",\n";
      out << "      \"top_k_final_min_rec\": "
          << result->top_k_final_min_rec << ",\n";
    }
    out << "      \"plan_seconds\": " << result->plan_seconds << ",\n";
    out << "      \"execute_seconds\": " << result->execute_seconds
        << ",\n";
    out << "      \"total_seconds\": " << result->total_seconds << ",\n";
    out << "      \"patterns\": " << patterns_json.str();
    out << "    }" << (i + 1 < lines.size() ? "," : "") << "\n";
    err << "query " << (i + 1) << "/" << lines.size() << " ["
        << result->backend << "] " << parsed->query.ToString() << ": "
        << result->patterns.size() << " patterns, "
        << (result->tree_reused ? "tree reused" : "tree built") << "\n";
    if (!result->status.ok()) {
      ++failed_queries;
      err << line_tag << "query failed: " << result->status.ToString()
          << (result->truncated ? " (partial result emitted)" : "") << "\n";
    }
  }
  out << "  ],\n";
  out << "  \"tree_builds\": " << session.tree_builds() << "\n";
  out << "}\n";
  err << lines.size() << " queries against one snapshot, "
      << session.tree_builds() << " tree build(s)\n";
  if (failed_queries > 0) {
    err << failed_queries << " of " << lines.size()
        << " queries failed (see per-query \"status\" fields)\n";
    return 2;
  }
  return 0;
}

int CmdMine(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  FlagParser parser("rpminer mine", "discover recurring patterns");
  std::string input, format, output_format, epoch, backend_name, queries;
  MiningQueryFlags mining;
  uint64_t threads = 1;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  mining.Register(&parser);
  parser.AddUint64("threads", 1,
                   "mining worker threads (0 = one per hardware thread, "
                   "1 = sequential); results are identical either way",
                   &threads);
  parser.AddString("backend", "",
                   "executor: sequential|parallel|streaming|windowed "
                   "(default: sequential, parallel when --threads != 1)",
                   &backend_name);
  parser.AddString("queries", "",
                   "file of query lines (mine flags + --backend/--threads "
                   "per line) run against one shared snapshot; emits one "
                   "JSON document",
                   &queries);
  bool with_stats = false;
  parser.AddBool("stats", false,
                 "append coverage/concentration stats per pattern "
                 "(text output only)",
                 &with_stats);
  parser.AddString("output-format", "text", "text|csv|json",
                   &output_format);
  parser.AddString("epoch", "",
                   "render timestamps as dates relative to this "
                   "'YYYY-MM-DD[ HH:MM]'",
                   &epoch);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }

  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  Result<std::optional<int64_t>> epoch_minutes = ResolveEpoch(epoch);
  if (!epoch_minutes.ok()) return Fail(err, epoch_minutes.status());

  // First SIGINT/SIGTERM cancels the query (it stops at the next budget
  // checkpoint with its deterministic committed prefix and exits 2); a
  // second one hard-exits.
  CancellationToken cancel_token;
  ScopedSignalCancellation signal_guard(&cancel_token);

  QuerySession session(*snapshot);
  if (!queries.empty()) {
    return RunMultiQuery(session, input, queries, *epoch_minutes,
                         &cancel_token, out, err);
  }

  Result<Query> query = mining.ToQuery(session.snapshot().size());
  if (!query.ok()) return Fail(err, query.status());
  query->cancel = &cancel_token;

  BackendKind backend =
      threads == 1 ? BackendKind::kSequential : BackendKind::kParallel;
  if (!backend_name.empty()) {
    Result<BackendKind> parsed = engine::ParseBackend(backend_name);
    if (!parsed.ok()) return Fail(err, parsed.status());
    backend = *parsed;
  }
  ExecOptions exec;
  exec.threads = threads;
  Result<QueryResult> result = session.Run(*query, backend, exec);
  if (!result.ok()) return Fail(err, result.status());
  PrintMineSummary(*query, *result, err);
  if (!result->status.ok()) {
    // Governed failure: still print whatever the budget committed (the
    // deterministic prefix), but exit non-zero so scripts notice.
    err << "query stopped early: " << result->status.ToString()
        << (result->truncated ? " (partial result below)" : "") << "\n";
  } else if (result->truncated) {
    // The soft max-patterns cap completed with an intentional cut: exit 0,
    // but say so — the count above is a committed prefix, not the total.
    err << "result truncated by --max-patterns (deterministic committed "
           "prefix)\n";
  }

  const TransactionDatabase& db = session.snapshot().db();
  if (with_stats && output_format == "text" && !db.empty()) {
    for (const RecurringPattern& p : result->patterns) {
      out << analysis::FormatItemset(p.items, db.dictionary()) << "  "
          << analysis::FormatPatternStats(
                 analysis::ComputePatternStats(p, db, query->params))
          << "\n";
    }
    return result->status.ok() ? 0 : 2;
  }
  if (Status s = WriteResults(result->patterns, db.dictionary(),
                              output_format, *epoch_minutes, &out);
      !s.ok()) {
    return Fail(err, s);
  }
  return result->status.ok() ? 0 : 2;
}

int CmdPfMine(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer pf-mine",
                    "periodic-frequent baseline (PF-growth++)");
  std::string input, format;
  uint64_t min_sup = 1;
  int64_t max_per = 1;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddUint64("min-sup", 1, "minimum support", &min_sup);
  parser.AddInt64("max-per", 1, "maximum periodicity", &max_per);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  const TransactionDatabase& db = (*snapshot)->db();
  baselines::PfParams params;
  params.min_sup = min_sup;
  params.max_per = max_per;
  if (Status s = params.Validate(); !s.ok()) return Fail(err, s);
  auto result = baselines::MinePeriodicFrequentPatterns(db, params);
  err << result.patterns.size() << " periodic-frequent patterns in "
      << result.seconds << "s\n";
  for (const auto& p : result.patterns) {
    out << analysis::FormatItemset(p.items, db.dictionary())
        << " sup=" << p.support << " per=" << p.periodicity << "\n";
  }
  return 0;
}

int CmdPpMine(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer pp-mine",
                    "p-pattern baseline (periodic-first)");
  std::string input, format;
  uint64_t min_sup = 1, window = 1, max_patterns = 0;
  int64_t per = 1;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddInt64("per", 1, "known period", &per);
  parser.AddUint64("window", 1, "Ma-Hellerstein window w", &window);
  parser.AddUint64("min-sup", 1, "min on-period inter-arrival times",
                   &min_sup);
  parser.AddUint64("max-patterns", 0,
                   "stop after this many found (0 = unlimited)",
                   &max_patterns);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  const TransactionDatabase& db = (*snapshot)->db();
  baselines::PPatternParams params;
  params.period = per;
  params.window = static_cast<Timestamp>(window);
  params.min_sup = min_sup;
  if (Status s = params.Validate(); !s.ok()) return Fail(err, s);
  baselines::PPatternOptions options;
  options.max_total_patterns = max_patterns;
  auto result = baselines::MinePPatterns(db, params, options);
  err << result.total_found << " p-patterns"
      << (result.truncated ? " (truncated)" : "") << " in "
      << result.seconds << "s\n";
  for (const auto& p : result.patterns) {
    out << analysis::FormatItemset(p.items, db.dictionary())
        << " sup=" << p.support << " periodic=" << p.periodic_count << "\n";
  }
  return 0;
}

int CmdAdvise(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer advise",
                    "suggest per/minPS/minRec starting points");
  std::string input, format;
  uint64_t min_item_support = 10;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddUint64("min-item-support", 10,
                   "ignore items below this support", &min_item_support);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  analysis::AdvisorOptions options;
  options.min_item_support = min_item_support;
  analysis::ThresholdAdvice advice =
      analysis::AdviseThresholds((*snapshot)->db(), options);
  out << "suggested: --per " << advice.suggested_period << " --min-ps "
      << advice.suggested_min_ps << " --min-rec "
      << advice.suggested_min_rec << "\n";
  out << "rationale: " << advice.rationale << "\n";
  return 0;
}

int CmdStats(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  FlagParser parser("rpminer stats", "dataset shape summary");
  std::string input, format;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  out << ComputeStats((*snapshot)->db()).ToString() << "\n";
  return 0;
}

int CmdCompare(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  FlagParser parser("rpminer compare",
                    "run PF / recurring / p-pattern models side by side "
                    "(Table 8 style)");
  std::string input, format;
  // Shared threshold flags, with compare's dataset-scale defaults (daily
  // period, 2% minPS) presented in --help and used when unset.
  MiningQueryFlags mining;
  mining.per = 1440;
  mining.min_ps_pct = 2.0;
  double min_sup_pct = 0.1;
  uint64_t max_pp = 500000;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  mining.Register(&parser);
  parser.AddDouble("min-sup-pct", 0.1,
                   "minSup for PF and p-patterns, percent of |TDB|",
                   &min_sup_pct);
  parser.AddUint64("max-pp", 500000,
                   "p-pattern enumeration cap (0 = unlimited)", &max_pp);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, format);
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  const TransactionDatabase& db = (*snapshot)->db();

  const uint64_t min_sup = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(
             min_sup_pct / 100.0 * static_cast<double>(db.size()))));

  baselines::PfParams pf;
  pf.min_sup = min_sup;
  pf.max_per = mining.per;
  auto pf_result = baselines::MinePeriodicFrequentPatterns(db, pf);
  size_t pf_len = 0;
  for (const auto& p : pf_result.patterns) {
    pf_len = std::max(pf_len, p.items.size());
  }

  Result<Query> query = mining.ToQuery(db.size());
  if (!query.ok()) return Fail(err, query.status());
  QuerySession session(*snapshot);
  Result<QueryResult> rp_result = session.Run(*query);
  if (!rp_result.ok()) return Fail(err, rp_result.status());

  baselines::PPatternParams pp;
  pp.period = mining.per;
  pp.min_sup = min_sup;
  baselines::PPatternOptions pp_options;
  pp_options.max_stored_patterns = 1;
  pp_options.max_total_patterns = max_pp;
  auto pp_result = baselines::MinePPatterns(db, pp, pp_options);

  out << "model                 patterns    max_len  seconds\n";
  char line[128];
  std::snprintf(line, sizeof(line), "%-20s %10zu %8zu %8.2f\n",
                "pf-patterns", pf_result.patterns.size(), pf_len,
                pf_result.seconds);
  out << line;
  std::snprintf(line, sizeof(line), "%-20s %10zu %8zu %8.2f\n",
                "recurring-patterns", rp_result->patterns.size(),
                MaxPatternLength(rp_result->patterns),
                rp_result->stats.total_seconds);
  out << line;
  std::snprintf(line, sizeof(line), "%-20s %s%9zu %8zu %8.2f\n",
                "p-patterns", pp_result.truncated ? ">" : " ",
                pp_result.total_found, pp_result.max_length,
                pp_result.seconds);
  out << line;
  return 0;
}

int CmdGenerate(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  FlagParser parser("rpminer generate",
                    "synthesize one of the paper's evaluation datasets");
  std::string dataset, output;
  double scale = 1.0;
  uint64_t seed = 42;
  parser.AddString("dataset", "twitter", "quest|shop14|twitter", &dataset);
  parser.AddString("output", "", "output path (tspmf); empty = stdout",
                   &output);
  parser.AddDouble("scale", 1.0, "fraction of the paper's size (0,1]",
                   &scale);
  parser.AddUint64("seed", 42, "generator seed", &seed);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (scale <= 0.0 || scale > 1.0) {
    err << "--scale must be in (0, 1]\n";
    return 1;
  }
  TransactionDatabase db;
  if (dataset == "quest") {
    db = gen::MakeT10I4D100K(scale, seed);
  } else if (dataset == "shop14") {
    db = gen::MakeShop14(scale, seed).db;
  } else if (dataset == "twitter") {
    db = gen::MakeTwitter(scale, seed).db;
  } else {
    err << "unknown --dataset '" << dataset << "'\n" << parser.Help();
    return 1;
  }
  err << "generated: " << ComputeStats(db).ToString() << "\n";
  Status write = output.empty()
                     ? WriteTimestampedSpmf(db, &out)
                     : WriteTimestampedSpmfFile(db, output);
  if (!write.ok()) return Fail(err, write);
  return 0;
}

int CmdConvert(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  FlagParser parser("rpminer convert",
                    "convert an event CSV to timestamped SPMF");
  std::string input, output;
  parser.AddString("input", "", "event CSV path (timestamp,item rows)",
                   &input);
  parser.AddString("output", "", "output path; empty = stdout", &output);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
      LoadSnapshot(input, "csv");
  if (!snapshot.ok()) return Fail(err, snapshot.status());
  const TransactionDatabase& db = (*snapshot)->db();
  Status write = output.empty()
                     ? WriteTimestampedSpmf(db, &out)
                     : WriteTimestampedSpmfFile(db, output);
  if (!write.ok()) return Fail(err, write);
  err << "converted " << db.size() << " transactions\n";
  return 0;
}

int CmdVerify(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer verify",
                    "differential correctness harness: randomized cases "
                    "cross-checked against the definitional oracle, the "
                    "parallel miner, the streaming RP-list and the query "
                    "engine");
  uint64_t cases = 200, seed = 7, threads = 4, max_failures = 5;
  uint64_t faults = 0, fault_ppm = 20000;
  bool no_oracle = false, no_parallel = false, no_streaming = false;
  bool no_engine = false, no_windowed = false, fixed_params = false;
  MiningQueryFlags mining;
  parser.AddUint64("cases", 200, "number of generated cases", &cases);
  parser.AddUint64("seed", 7, "case-stream seed (reproducible)", &seed);
  parser.AddUint64("faults", 0,
                   "run the seeded fault-injection campaign instead: N "
                   "trials of injected allocation/IO/thread/clock faults "
                   "(DESIGN.md §7.4)",
                   &faults);
  parser.AddUint64("fault-ppm", 20000,
                   "per-hit fault fire probability, in parts per million "
                   "(only with --faults)",
                   &fault_ppm);
  parser.AddUint64("threads", 4, "worker threads for the parallel check",
                   &threads);
  parser.AddUint64("max-failures", 5,
                   "stop after this many divergent cases", &max_failures);
  parser.AddBool("no-oracle", false, "skip the brute-force oracle check",
                 &no_oracle);
  parser.AddBool("no-parallel", false,
                 "skip the sequential-vs-parallel check", &no_parallel);
  parser.AddBool("no-streaming", false,
                 "skip the streaming-vs-batch RP-list check", &no_streaming);
  parser.AddBool("no-engine", false,
                 "skip the query-engine purity/reuse check", &no_engine);
  parser.AddBool("no-windowed", false,
                 "skip the windowed-vs-batch incremental check",
                 &no_windowed);
  parser.AddBool("fixed-params", false,
                 "mine every generated database at the --per/--min-ps/"
                 "--min-rec/--tolerance flags instead of the case's own "
                 "parameters",
                 &fixed_params);
  mining.Register(&parser);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  // First SIGINT/SIGTERM stops after the current case/trial and reports
  // what completed; a second one hard-exits.
  CancellationToken cancel_token;
  ScopedSignalCancellation signal_guard(&cancel_token);

  if (faults > 0) {
    if (fault_ppm > 1000000) {
      err << "--fault-ppm must be <= 1000000\n";
      return 1;
    }
    FaultCampaignOptions campaign;
    campaign.trials = faults;
    campaign.seed = seed;
    campaign.probability_ppm = static_cast<uint32_t>(fault_ppm);
    campaign.parallel_threads = threads == 0 ? 4 : threads;
    campaign.max_failures = max_failures == 0 ? 1 : max_failures;
    campaign.cancel = &cancel_token;
    FaultCampaignReport report = RunFaultCampaign(campaign);
    out << report.ToString() << "\n";
    if (report.cancelled) return 2;
    return report.ok() ? 0 : 2;
  }
  if (cases == 0) {
    err << "--cases must be >= 1\n";
    return 1;
  }
  verify::VerifyOptions options;
  options.cases = cases;
  options.seed = seed;
  options.cancel = &cancel_token;
  options.max_failures = max_failures == 0 ? 1 : max_failures;
  options.cross_check.check_oracle = !no_oracle;
  options.cross_check.check_parallel = !no_parallel;
  options.cross_check.check_streaming = !no_streaming;
  options.cross_check.check_engine = !no_engine;
  options.cross_check.check_windowed = !no_windowed;
  options.cross_check.parallel_threads = threads;
  if (fixed_params) {
    if (mining.min_ps_pct >= 0.0) {
      err << "--min-ps-pct is per-database; use absolute --min-ps with "
             "--fixed-params\n";
      return 1;
    }
    if (mining.top_k > 0 || mining.closed || mining.maximal ||
        mining.max_len > 0 || mining.window > 0 || mining.delta > 0) {
      err << "--fixed-params supports threshold flags only "
             "(per/min-ps/min-rec/tolerance)\n";
      return 1;
    }
    // Same resolution path as `mine` (db size is irrelevant without pct).
    Result<Query> query = mining.ToQuery(/*db_size=*/0);
    if (!query.ok()) return Fail(err, query.status());
    options.fixed_params = query->params;
  }
  verify::VerifyReport report = verify::RunVerification(options);
  out << verify::FormatReport(report, options);
  if (report.cancelled) return 2;
  return report.ok() ? 0 : 2;
}

/// `rpminer serve`: long-lived query server over line-delimited JSON on
/// loopback TCP. Datasets are the positional args as name=path[:format];
/// more can be hot-swapped in over the wire ({"op":"swap"}). Runs until
/// SIGINT/SIGTERM, then drains: stop accepting, cancel in-flight queries,
/// flush responses, force-close at --drain-deadline-ms.
int CmdServe(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  FlagParser parser("rpminer serve",
                    "serve mining queries over line-delimited JSON");
  ServeFlags flags;
  flags.Register(&parser);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  Result<serve::QueryService::Options> service_options =
      flags.ToServiceOptions();
  if (!service_options.ok()) return Fail(err, service_options.status());
  Result<serve::Server::Options> server_options = flags.ToServerOptions();
  if (!server_options.ok()) return Fail(err, server_options.status());

  serve::TenantRegistry tenants;
  if (!flags.config.empty()) {
    std::ifstream config(flags.config);
    if (!config) {
      return Fail(err, Status::IOError("cannot open --config file '" +
                                       flags.config + "'"));
    }
    if (Status s = tenants.LoadConfig(config); !s.ok()) {
      return Fail(err, s);
    }
  }

  // Positional datasets: name=path or name=path:format.
  engine::SnapshotRegistry registry;
  for (const std::string& spec : parser.positional()) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Fail(err, Status::InvalidArgument(
                           "dataset spec '" + spec +
                           "' is not name=path[:format]"));
    }
    const std::string name = spec.substr(0, eq);
    std::string path = spec.substr(eq + 1);
    std::string format = "tspmf";
    const size_t colon = path.rfind(':');
    if (colon != std::string::npos && colon > 0) {
      const std::string suffix = path.substr(colon + 1);
      if (suffix == "tspmf" || suffix == "spmf" || suffix == "csv") {
        format = suffix;
        path.resize(colon);
      }
    }
    Result<std::shared_ptr<const DatasetSnapshot>> snapshot =
        LoadSnapshot(path, format);
    if (!snapshot.ok()) return Fail(err, snapshot.status());
    if (Status s = registry.Register(name, std::move(*snapshot)); !s.ok()) {
      return Fail(err, s);
    }
    err << "dataset " << name << ": " << path << " (" << format << ")\n";
  }

  serve::QueryService service(&registry, std::move(tenants),
                              *service_options);
  serve::Server server(&service, *server_options);
  if (Status s = server.Start(); !s.ok()) return Fail(err, s);

  // First SIGINT/SIGTERM begins the drain; a second one hard-exits.
  CancellationToken cancel_token;
  ScopedSignalCancellation signal_guard(&cancel_token);
  err << "rpminer serve listening on 127.0.0.1:" << server.port() << "\n";
  out.flush();
  err.flush();
  while (!cancel_token.cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  err << "drain: stopping accept loop, cancelling in-flight queries\n";
  const size_t forced = server.Drain();
  err << "drain: complete (" << forced << " session(s) force-closed)\n";
  return 0;
}

}  // namespace

std::string RpminerUsage() {
  return "usage: rpminer <command> [flags]\n"
         "commands:\n"
         "  mine      discover recurring patterns (RP-growth; "
         "--queries=FILE runs many queries on one snapshot)\n"
         "  pf-mine   periodic-frequent baseline (PF-growth++)\n"
         "  pp-mine   p-pattern baseline (periodic-first)\n"
         "  stats     dataset shape summary\n"
         "  advise    suggest per/minPS/minRec starting points\n"
         "  compare   PF vs recurring vs p-patterns on one input\n"
         "  generate  synthesize quest|shop14|twitter dataset\n"
         "  convert   event CSV -> timestamped SPMF\n"
         "  verify    differential correctness harness (randomized "
         "cross-checks)\n"
         "  serve     long-lived query server (line-delimited JSON over "
         "loopback TCP; name=path datasets)\n"
         "run 'rpminer <command> --help' is not supported; invalid flags "
         "print the command's flag list\n";
}

int RunRpminer(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  if (argc < 2) {
    err << RpminerUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so subcommands see their own flags as argv[1..].
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "mine") return CmdMine(sub_argc, sub_argv, out, err);
  if (command == "pf-mine") return CmdPfMine(sub_argc, sub_argv, out, err);
  if (command == "pp-mine") return CmdPpMine(sub_argc, sub_argv, out, err);
  if (command == "stats") return CmdStats(sub_argc, sub_argv, out, err);
  if (command == "advise") return CmdAdvise(sub_argc, sub_argv, out, err);
  if (command == "compare") return CmdCompare(sub_argc, sub_argv, out, err);
  if (command == "generate") {
    return CmdGenerate(sub_argc, sub_argv, out, err);
  }
  if (command == "convert") return CmdConvert(sub_argc, sub_argv, out, err);
  if (command == "verify") return CmdVerify(sub_argc, sub_argv, out, err);
  if (command == "serve") return CmdServe(sub_argc, sub_argv, out, err);
  err << "unknown command '" << command << "'\n" << RpminerUsage();
  return 1;
}

}  // namespace rpm::tools
