#include "rpm/tools/commands.h"

#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>

#include "rpm/analysis/export.h"
#include "rpm/analysis/pattern_report.h"
#include "rpm/analysis/pattern_stats.h"
#include "rpm/analysis/threshold_advisor.h"
#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/common/civil_time.h"
#include "rpm/common/flags.h"
#include "rpm/core/pattern_filters.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/top_k.h"
#include "rpm/gen/paper_datasets.h"
#include "rpm/timeseries/database_stats.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/timeseries/io/timestamped_csv_io.h"
#include "rpm/timeseries/tdb_builder.h"
#include "rpm/verify/harness.h"

namespace rpm::tools {

namespace {

/// Loads a database per --format: tspmf (default), spmf, or csv.
Result<TransactionDatabase> LoadDatabase(const std::string& path,
                                         const std::string& format) {
  if (format == "tspmf") return ReadTimestampedSpmfFile(path);
  if (format == "spmf") return ReadSpmfFile(path);
  if (format == "csv") {
    RPM_ASSIGN_OR_RETURN(EventCsvData data, ReadEventCsvFile(path));
    return BuildTdbFromSequence(data.sequence, std::move(data.dictionary));
  }
  return Status::InvalidArgument("unknown --format '" + format +
                                 "' (expected tspmf, spmf or csv)");
}

/// Resolves --epoch into minutes since 1970 (empty -> no epoch).
Result<std::optional<int64_t>> ResolveEpoch(const std::string& epoch) {
  if (epoch.empty()) return std::optional<int64_t>{};
  RPM_ASSIGN_OR_RETURN(CivilMinute cm, ParseCivilMinute(epoch));
  return std::optional<int64_t>{MinutesFromCivil(cm)};
}

Status WriteResults(const std::vector<RecurringPattern>& patterns,
                    const ItemDictionary& dict,
                    const std::string& output_format,
                    const std::optional<int64_t>& epoch, std::ostream* out) {
  if (output_format == "text") {
    analysis::ReportOptions options;
    options.epoch_minutes = epoch;
    for (const std::string& line :
         analysis::FormatPatternReport(patterns, dict, options)) {
      *out << line << "\n";
    }
    return Status::OK();
  }
  analysis::ExportOptions options;
  options.epoch_minutes = epoch;
  if (output_format == "csv") {
    return analysis::WritePatternsCsv(patterns, dict, out, options);
  }
  if (output_format == "json") {
    return analysis::WritePatternsJson(patterns, dict, out, options);
  }
  return Status::InvalidArgument("unknown --output-format '" +
                                 output_format +
                                 "' (expected text, csv or json)");
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 2;
}

int CmdMine(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  FlagParser parser("rpminer mine", "discover recurring patterns");
  std::string input, format, output_format, epoch;
  int64_t per = 0;
  uint64_t min_ps = 0, min_rec = 1, tolerance = 0, top_k = 0, max_len = 0;
  uint64_t threads = 1;
  double min_ps_pct = -1.0;
  bool closed = false, maximal = false;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddInt64("per", 1, "period threshold (Definition 4)", &per);
  parser.AddUint64("min-ps", 0, "absolute minPS (Definition 7)", &min_ps);
  parser.AddDouble("min-ps-pct", -1.0,
                   "minPS as percent of |TDB| (overrides --min-ps)",
                   &min_ps_pct);
  parser.AddUint64("min-rec", 1, "minRec (Definition 9)", &min_rec);
  parser.AddUint64("tolerance", 0,
                   "noise tolerance: over-period gaps absorbed per interval",
                   &tolerance);
  parser.AddUint64("top-k", 0,
                   "mine the k most-recurring patterns instead of using "
                   "--min-rec",
                   &top_k);
  parser.AddUint64("max-length", 0, "pattern length cap (0 = unlimited)",
                   &max_len);
  parser.AddUint64("threads", 1,
                   "mining worker threads (0 = one per hardware thread, "
                   "1 = sequential); results are identical either way",
                   &threads);
  parser.AddBool("closed", false, "keep only closed patterns", &closed);
  parser.AddBool("maximal", false, "keep only maximal patterns", &maximal);
  bool with_stats = false;
  parser.AddBool("stats", false,
                 "append coverage/concentration stats per pattern "
                 "(text output only)",
                 &with_stats);
  parser.AddString("output-format", "text", "text|csv|json",
                   &output_format);
  parser.AddString("epoch", "",
                   "render timestamps as dates relative to this "
                   "'YYYY-MM-DD[ HH:MM]'",
                   &epoch);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }

  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());
  Result<std::optional<int64_t>> epoch_minutes = ResolveEpoch(epoch);
  if (!epoch_minutes.ok()) return Fail(err, epoch_minutes.status());

  if (min_ps_pct >= 0.0) {
    min_ps = static_cast<uint64_t>(
        std::ceil(min_ps_pct / 100.0 * static_cast<double>(db->size())));
  }
  if (min_ps == 0) min_ps = 1;

  std::vector<RecurringPattern> patterns;
  if (top_k > 0) {
    TopKOptions options;
    options.max_pattern_length = max_len;
    options.max_gap_violations = static_cast<uint32_t>(tolerance);
    TopKResult result =
        MineTopKByRecurrence(*db, per, min_ps, top_k, options);
    err << "top-k: " << result.patterns.size() << " patterns at minRec="
        << result.final_min_rec << " after " << result.rounds
        << " round(s)\n";
    patterns = std::move(result.patterns);
  } else {
    RpParams params;
    params.period = per;
    params.min_ps = min_ps;
    params.min_rec = min_rec;
    params.max_gap_violations = static_cast<uint32_t>(tolerance);
    if (Status s = params.Validate(); !s.ok()) return Fail(err, s);
    RpGrowthOptions options;
    options.max_pattern_length = max_len;
    options.num_threads = threads;
    RpGrowthResult result = MineRecurringPatterns(*db, params, options);
    err << result.patterns.size() << " recurring patterns ("
        << params.ToString() << ") in " << result.stats.total_seconds
        << "s";
    if (result.stats.threads_used > 1) {
      err << " [" << result.stats.threads_used << " threads, mine "
          << result.stats.mine_seconds << "s wall / "
          << result.stats.mine_cpu_seconds << "s cpu]";
    }
    err << " [merge " << result.stats.merge_invocations << " calls / "
        << result.stats.runs_merged << " runs / "
        << result.stats.timestamps_merged << " ts, scratch peak "
        << result.stats.scratch_bytes_peak << " B]";
    err << "\n";
    patterns = std::move(result.patterns);
  }
  if (closed) patterns = FilterClosed(*db, std::move(patterns));
  if (maximal) patterns = FilterMaximal(std::move(patterns));

  if (with_stats && output_format == "text" && !db->empty()) {
    for (const RecurringPattern& p : patterns) {
      out << analysis::FormatItemset(p.items, db->dictionary()) << "  "
          << analysis::FormatPatternStats(analysis::ComputePatternStats(
                 p, db->start_ts(), db->end_ts()))
          << "\n";
    }
    return 0;
  }
  if (Status s = WriteResults(patterns, db->dictionary(), output_format,
                              *epoch_minutes, &out);
      !s.ok()) {
    return Fail(err, s);
  }
  return 0;
}

int CmdPfMine(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer pf-mine",
                    "periodic-frequent baseline (PF-growth++)");
  std::string input, format;
  uint64_t min_sup = 1;
  int64_t max_per = 1;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddUint64("min-sup", 1, "minimum support", &min_sup);
  parser.AddInt64("max-per", 1, "maximum periodicity", &max_per);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());
  baselines::PfParams params;
  params.min_sup = min_sup;
  params.max_per = max_per;
  if (Status s = params.Validate(); !s.ok()) return Fail(err, s);
  auto result = baselines::MinePeriodicFrequentPatterns(*db, params);
  err << result.patterns.size() << " periodic-frequent patterns in "
      << result.seconds << "s\n";
  for (const auto& p : result.patterns) {
    out << analysis::FormatItemset(p.items, db->dictionary())
        << " sup=" << p.support << " per=" << p.periodicity << "\n";
  }
  return 0;
}

int CmdPpMine(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer pp-mine",
                    "p-pattern baseline (periodic-first)");
  std::string input, format;
  uint64_t min_sup = 1, window = 1, max_patterns = 0;
  int64_t per = 1;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddInt64("per", 1, "known period", &per);
  parser.AddUint64("window", 1, "Ma-Hellerstein window w", &window);
  parser.AddUint64("min-sup", 1, "min on-period inter-arrival times",
                   &min_sup);
  parser.AddUint64("max-patterns", 0,
                   "stop after this many found (0 = unlimited)",
                   &max_patterns);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());
  baselines::PPatternParams params;
  params.period = per;
  params.window = static_cast<Timestamp>(window);
  params.min_sup = min_sup;
  if (Status s = params.Validate(); !s.ok()) return Fail(err, s);
  baselines::PPatternOptions options;
  options.max_total_patterns = max_patterns;
  auto result = baselines::MinePPatterns(*db, params, options);
  err << result.total_found << " p-patterns"
      << (result.truncated ? " (truncated)" : "") << " in "
      << result.seconds << "s\n";
  for (const auto& p : result.patterns) {
    out << analysis::FormatItemset(p.items, db->dictionary())
        << " sup=" << p.support << " periodic=" << p.periodic_count << "\n";
  }
  return 0;
}

int CmdAdvise(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer advise",
                    "suggest per/minPS/minRec starting points");
  std::string input, format;
  uint64_t min_item_support = 10;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddUint64("min-item-support", 10,
                   "ignore items below this support", &min_item_support);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());
  analysis::AdvisorOptions options;
  options.min_item_support = min_item_support;
  analysis::ThresholdAdvice advice = analysis::AdviseThresholds(*db, options);
  out << "suggested: --per " << advice.suggested_period << " --min-ps "
      << advice.suggested_min_ps << " --min-rec "
      << advice.suggested_min_rec << "\n";
  out << "rationale: " << advice.rationale << "\n";
  return 0;
}

int CmdStats(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  FlagParser parser("rpminer stats", "dataset shape summary");
  std::string input, format;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());
  out << ComputeStats(*db).ToString() << "\n";
  return 0;
}

int CmdCompare(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  FlagParser parser("rpminer compare",
                    "run PF / recurring / p-pattern models side by side "
                    "(Table 8 style)");
  std::string input, format;
  int64_t per = 1440;
  double min_sup_pct = 0.1, min_ps_pct = 2.0;
  uint64_t min_rec = 1, max_pp = 500000;
  parser.AddString("input", "", "event file path", &input);
  parser.AddString("format", "tspmf", "input format: tspmf|spmf|csv",
                   &format);
  parser.AddInt64("per", 1440, "period / max-periodicity threshold", &per);
  parser.AddDouble("min-sup-pct", 0.1,
                   "minSup for PF and p-patterns, percent of |TDB|",
                   &min_sup_pct);
  parser.AddDouble("min-ps-pct", 2.0,
                   "minPS for recurring patterns, percent of |TDB|",
                   &min_ps_pct);
  parser.AddUint64("min-rec", 1, "minRec for recurring patterns", &min_rec);
  parser.AddUint64("max-pp", 500000,
                   "p-pattern enumeration cap (0 = unlimited)", &max_pp);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, format);
  if (!db.ok()) return Fail(err, db.status());

  const uint64_t min_sup = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(
             min_sup_pct / 100.0 * static_cast<double>(db->size()))));

  baselines::PfParams pf;
  pf.min_sup = min_sup;
  pf.max_per = per;
  auto pf_result = baselines::MinePeriodicFrequentPatterns(*db, pf);
  size_t pf_len = 0;
  for (const auto& p : pf_result.patterns) {
    pf_len = std::max(pf_len, p.items.size());
  }

  Result<RpParams> rp = MakeParamsWithMinPsFraction(
      per, min_ps_pct / 100.0, min_rec, db->size());
  if (!rp.ok()) return Fail(err, rp.status());
  auto rp_result = MineRecurringPatterns(*db, *rp);

  baselines::PPatternParams pp;
  pp.period = per;
  pp.min_sup = min_sup;
  baselines::PPatternOptions pp_options;
  pp_options.max_stored_patterns = 1;
  pp_options.max_total_patterns = max_pp;
  auto pp_result = baselines::MinePPatterns(*db, pp, pp_options);

  out << "model                 patterns    max_len  seconds\n";
  char line[128];
  std::snprintf(line, sizeof(line), "%-20s %10zu %8zu %8.2f\n",
                "pf-patterns", pf_result.patterns.size(), pf_len,
                pf_result.seconds);
  out << line;
  std::snprintf(line, sizeof(line), "%-20s %10zu %8zu %8.2f\n",
                "recurring-patterns", rp_result.patterns.size(),
                MaxPatternLength(rp_result.patterns),
                rp_result.stats.total_seconds);
  out << line;
  std::snprintf(line, sizeof(line), "%-20s %s%9zu %8zu %8.2f\n",
                "p-patterns", pp_result.truncated ? ">" : " ",
                pp_result.total_found, pp_result.max_length,
                pp_result.seconds);
  out << line;
  return 0;
}

int CmdGenerate(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  FlagParser parser("rpminer generate",
                    "synthesize one of the paper's evaluation datasets");
  std::string dataset, output;
  double scale = 1.0;
  uint64_t seed = 42;
  parser.AddString("dataset", "twitter", "quest|shop14|twitter", &dataset);
  parser.AddString("output", "", "output path (tspmf); empty = stdout",
                   &output);
  parser.AddDouble("scale", 1.0, "fraction of the paper's size (0,1]",
                   &scale);
  parser.AddUint64("seed", 42, "generator seed", &seed);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (scale <= 0.0 || scale > 1.0) {
    err << "--scale must be in (0, 1]\n";
    return 1;
  }
  TransactionDatabase db;
  if (dataset == "quest") {
    db = gen::MakeT10I4D100K(scale, seed);
  } else if (dataset == "shop14") {
    db = gen::MakeShop14(scale, seed).db;
  } else if (dataset == "twitter") {
    db = gen::MakeTwitter(scale, seed).db;
  } else {
    err << "unknown --dataset '" << dataset << "'\n" << parser.Help();
    return 1;
  }
  err << "generated: " << ComputeStats(db).ToString() << "\n";
  Status write = output.empty()
                     ? WriteTimestampedSpmf(db, &out)
                     : WriteTimestampedSpmfFile(db, output);
  if (!write.ok()) return Fail(err, write);
  return 0;
}

int CmdConvert(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  FlagParser parser("rpminer convert",
                    "convert an event CSV to timestamped SPMF");
  std::string input, output;
  parser.AddString("input", "", "event CSV path (timestamp,item rows)",
                   &input);
  parser.AddString("output", "", "output path; empty = stdout", &output);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (input.empty()) {
    err << "--input is required\n" << parser.Help();
    return 1;
  }
  Result<TransactionDatabase> db = LoadDatabase(input, "csv");
  if (!db.ok()) return Fail(err, db.status());
  Status write = output.empty()
                     ? WriteTimestampedSpmf(*db, &out)
                     : WriteTimestampedSpmfFile(*db, output);
  if (!write.ok()) return Fail(err, write);
  err << "converted " << db->size() << " transactions\n";
  return 0;
}

int CmdVerify(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  FlagParser parser("rpminer verify",
                    "differential correctness harness: randomized cases "
                    "cross-checked against the definitional oracle, the "
                    "parallel miner and the streaming RP-list");
  uint64_t cases = 200, seed = 7, threads = 4, max_failures = 5;
  bool no_oracle = false, no_parallel = false, no_streaming = false;
  parser.AddUint64("cases", 200, "number of generated cases", &cases);
  parser.AddUint64("seed", 7, "case-stream seed (reproducible)", &seed);
  parser.AddUint64("threads", 4, "worker threads for the parallel check",
                   &threads);
  parser.AddUint64("max-failures", 5,
                   "stop after this many divergent cases", &max_failures);
  parser.AddBool("no-oracle", false, "skip the brute-force oracle check",
                 &no_oracle);
  parser.AddBool("no-parallel", false,
                 "skip the sequential-vs-parallel check", &no_parallel);
  parser.AddBool("no-streaming", false,
                 "skip the streaming-vs-batch RP-list check", &no_streaming);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    err << s.ToString() << "\n" << parser.Help();
    return 1;
  }
  if (cases == 0) {
    err << "--cases must be >= 1\n";
    return 1;
  }
  verify::VerifyOptions options;
  options.cases = cases;
  options.seed = seed;
  options.max_failures = max_failures == 0 ? 1 : max_failures;
  options.cross_check.check_oracle = !no_oracle;
  options.cross_check.check_parallel = !no_parallel;
  options.cross_check.check_streaming = !no_streaming;
  options.cross_check.parallel_threads = threads;
  verify::VerifyReport report = verify::RunVerification(options);
  out << verify::FormatReport(report, options);
  return report.ok() ? 0 : 2;
}

}  // namespace

std::string RpminerUsage() {
  return "usage: rpminer <command> [flags]\n"
         "commands:\n"
         "  mine      discover recurring patterns (RP-growth)\n"
         "  pf-mine   periodic-frequent baseline (PF-growth++)\n"
         "  pp-mine   p-pattern baseline (periodic-first)\n"
         "  stats     dataset shape summary\n"
         "  advise    suggest per/minPS/minRec starting points\n"
         "  compare   PF vs recurring vs p-patterns on one input\n"
         "  generate  synthesize quest|shop14|twitter dataset\n"
         "  convert   event CSV -> timestamped SPMF\n"
         "  verify    differential correctness harness (randomized "
         "cross-checks)\n"
         "run 'rpminer <command> --help' is not supported; invalid flags "
         "print the command's flag list\n";
}

int RunRpminer(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  if (argc < 2) {
    err << RpminerUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so subcommands see their own flags as argv[1..].
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "mine") return CmdMine(sub_argc, sub_argv, out, err);
  if (command == "pf-mine") return CmdPfMine(sub_argc, sub_argv, out, err);
  if (command == "pp-mine") return CmdPpMine(sub_argc, sub_argv, out, err);
  if (command == "stats") return CmdStats(sub_argc, sub_argv, out, err);
  if (command == "advise") return CmdAdvise(sub_argc, sub_argv, out, err);
  if (command == "compare") return CmdCompare(sub_argc, sub_argv, out, err);
  if (command == "generate") {
    return CmdGenerate(sub_argc, sub_argv, out, err);
  }
  if (command == "convert") return CmdConvert(sub_argc, sub_argv, out, err);
  if (command == "verify") return CmdVerify(sub_argc, sub_argv, out, err);
  err << "unknown command '" << command << "'\n" << RpminerUsage();
  return 1;
}

}  // namespace rpm::tools
