#include "rpm/tools/signal_cancel.h"

#include <unistd.h>

#include <atomic>

namespace rpm::tools {

namespace {

std::atomic<rpm::CancellationToken*> g_token{nullptr};
std::atomic<int> g_signal_count{0};

// Async-signal-safe by construction: lock-free atomics and _exit only.
void HandleSignal(int /*sig*/) {
  if (g_signal_count.fetch_add(1, std::memory_order_acq_rel) >= 1) {
    _exit(130);  // Second signal: stop immediately, no drain.
  }
  rpm::CancellationToken* token =
      g_token.load(std::memory_order_acquire);
  if (token != nullptr) token->Cancel();
}

}  // namespace

ScopedSignalCancellation::ScopedSignalCancellation(
    CancellationToken* token) {
  g_signal_count.store(0, std::memory_order_release);
  g_token.store(token, std::memory_order_release);
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_handler = HandleSignal;
  action.sa_flags = 0;  // No SA_RESTART: blocked syscalls return EINTR.
  sigaction(SIGINT, &action, &old_int_);
  sigaction(SIGTERM, &action, &old_term_);
}

ScopedSignalCancellation::~ScopedSignalCancellation() {
  sigaction(SIGINT, &old_int_, nullptr);
  sigaction(SIGTERM, &old_term_, nullptr);
  g_token.store(nullptr, std::memory_order_release);
}

bool ScopedSignalCancellation::signal_received() {
  return g_signal_count.load(std::memory_order_acquire) > 0;
}

}  // namespace rpm::tools
