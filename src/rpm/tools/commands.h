// Implementation of the `rpminer` command-line tool, separated from main()
// so the commands are unit-testable against in-memory streams.
//
// Subcommands:
//   mine      discover recurring patterns in an event file
//   pf-mine   periodic-frequent baseline
//   pp-mine   p-pattern baseline
//   stats     dataset shape summary
//   generate  synthesize one of the paper's evaluation datasets
//   convert   event CSV -> timestamped SPMF

#ifndef RPM_TOOLS_COMMANDS_H_
#define RPM_TOOLS_COMMANDS_H_

#include <iosfwd>
#include <string>

namespace rpm::tools {

/// Dispatches argv[1] to a subcommand. Writes results to `out`,
/// diagnostics to `err`. Returns a process exit code (0 success, 1 usage
/// error, 2 runtime failure).
int RunRpminer(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err);

/// Top-level usage text.
std::string RpminerUsage();

}  // namespace rpm::tools

#endif  // RPM_TOOLS_COMMANDS_H_
