#include "rpm/engine/snapshot_registry.h"

#include <utility>

namespace rpm::engine {

namespace {

RegisteredDataset MakeEntry(const std::string& name, uint64_t epoch,
                            std::shared_ptr<const DatasetSnapshot> snapshot) {
  RegisteredDataset entry;
  entry.name = name;
  entry.epoch = epoch;
  entry.planner = std::make_shared<QueryPlanner>(snapshot);
  entry.snapshot = std::move(snapshot);
  return entry;
}

}  // namespace

Status SnapshotRegistry::Register(
    const std::string& name,
    std::shared_ptr<const DatasetSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot register a null snapshot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (datasets_.count(name) > 0) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' is already registered (swap to replace)");
  }
  datasets_.emplace(name, MakeEntry(name, 1, std::move(snapshot)));
  return Status::OK();
}

Result<RegisteredDataset> SnapshotRegistry::Swap(
    const std::string& name,
    std::shared_ptr<const DatasetSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot swap in a null snapshot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' is not registered");
  }
  it->second = MakeEntry(name, it->second.epoch + 1, std::move(snapshot));
  return it->second;
}

Result<RegisteredDataset> SnapshotRegistry::Publish(
    const std::string& name,
    std::shared_ptr<const DatasetSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    it = datasets_.emplace(name, MakeEntry(name, 1, std::move(snapshot)))
             .first;
  } else {
    it->second = MakeEntry(name, it->second.epoch + 1, std::move(snapshot));
  }
  return it->second;
}

Result<RegisteredDataset> SnapshotRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' is not registered");
  }
  return it->second;
}

std::vector<RegisteredDataset> SnapshotRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RegisteredDataset> out;
  out.reserve(datasets_.size());
  for (const auto& [name, entry] : datasets_) out.push_back(entry);
  return out;  // std::map iterates name-sorted.
}

size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.size();
}

}  // namespace rpm::engine
