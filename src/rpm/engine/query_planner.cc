#include "rpm/engine/query_planner.h"

#include <utility>

#include "rpm/common/logging.h"

namespace rpm::engine {

namespace {

/// True when a build at `built` can serve a query at `wanted`: identical
/// interval semantics (period, tolerance) and thresholds no stricter than
/// the query's (see the header's soundness argument).
bool Serves(const RpParams& built, const RpParams& wanted) {
  return built.period == wanted.period &&
         built.max_gap_violations == wanted.max_gap_violations &&
         built.min_ps <= wanted.min_ps && built.min_rec <= wanted.min_rec;
}

/// Among serving builds, prefer the tightest (larger thresholds = smaller
/// tree = cheaper clone + less dead exploration when mining the stricter
/// query). minPS shrinks the tree far more than minRec, so it leads.
bool Tighter(const RpParams& a, const RpParams& b) {
  return a.min_ps > b.min_ps ||
         (a.min_ps == b.min_ps && a.min_rec > b.min_rec);
}

}  // namespace

QueryPlanner::QueryPlanner(std::shared_ptr<const DatasetSnapshot> snapshot)
    : snapshot_(std::move(snapshot)) {
  RPM_CHECK(snapshot_ != nullptr);
}

QueryPlanner::Plan QueryPlanner::PlanFor(const RpParams& params,
                                         QueryBudget* budget,
                                         size_t build_threads) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  if (Plan hit = FindServing(params); hit.prepared != nullptr) return hit;
  // Build outside the lock: concurrent planners for disjoint params
  // proceed in parallel. Two threads racing on the same params build
  // twice; both results are correct and the second insert is a no-op hit
  // for later queries — simpler than a per-key latch and harmless at
  // session query rates.
  auto built = std::make_shared<PreparedMining>(
      PrepareMining(snapshot_->db(), params, PruningMode::kErec, budget,
                    build_threads));
  if (budget != nullptr && budget->hard_stopped()) {
    // Aborted build: incomplete RP-list/tree. Hand it back for accounting
    // but never cache it or count it as a session build.
    return {std::move(built), /*reused=*/false};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<const PreparedMining>& entry : cache_) {
    if (Serves(entry->params, params)) return {entry, /*reused=*/true};
  }
  ++tree_builds_;
  cache_.push_back(built);
  if (cache_.size() > kMaxCacheEntries) cache_.erase(cache_.begin());
  return {std::move(built), /*reused=*/false};
}

QueryPlanner::Plan QueryPlanner::FindServing(const RpParams& params) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const PreparedMining* best = nullptr;
  std::shared_ptr<const PreparedMining> pick;
  for (const std::shared_ptr<const PreparedMining>& entry : cache_) {
    if (!Serves(entry->params, params)) continue;
    if (best == nullptr || Tighter(entry->params, best->params)) {
      best = entry.get();
      pick = entry;
    }
  }
  const bool found = pick != nullptr;
  return {std::move(pick), /*reused=*/found};
}

uint64_t QueryPlanner::tree_builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tree_builds_;
}

size_t QueryPlanner::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace rpm::engine
