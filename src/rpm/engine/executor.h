// Uniform query execution across the miner's three run modes.
//
// An Executor turns (planner, Query) into a QueryResult. All backends are
// observationally pure over the same snapshot: for any query they accept,
// the pattern set (and its canonical order) is bit-identical across
// backends and across repeated runs — only timings and threads_used vary.
//
//   sequential — the single-threaded reference path.
//   parallel   — suffix projections mined on a worker pool (PR-1 pool);
//                schedule-invariant counters match sequential exactly.
//   streaming  — RP-list replaced by incremental StreamingRpList
//                ingestion; exact model only (tolerance=0, no top-k).
//   windowed   — the snapshot replayed in Query::delta-sized batches
//                through the incremental sliding-window miner
//                (core/windowed_miner.h); the result is the final live
//                window's committed pattern set. Exact model only, no
//                top-k / max-patterns / sinkless runs; requires
//                Query::window > 0. `sink`, when set, receives every
//                per-delta *added* pattern in delta order — the
//                dashboard-diff consumption model.

#ifndef RPM_ENGINE_EXECUTOR_H_
#define RPM_ENGINE_EXECUTOR_H_

#include <cstddef>
#include <string>

#include "rpm/common/status.h"
#include "rpm/engine/query.h"
#include "rpm/engine/query_planner.h"

namespace rpm::engine {

enum class BackendKind { kSequential, kParallel, kStreaming, kWindowed };

/// "sequential" / "parallel" / "streaming" / "windowed".
const char* BackendName(BackendKind kind);

/// Inverse of BackendName; InvalidArgument on anything else.
Result<BackendKind> ParseBackend(const std::string& name);

struct ExecOptions {
  /// Parallel-backend worker count: 0 = one per hardware thread, values
  /// <= 1 are promoted to 2 (a parallel run uses workers by definition).
  /// Ignored by the sequential and streaming backends.
  size_t threads = 0;
};

/// Stateless execution strategy; instances are shared singletons
/// (GetExecutor) and safe to use from several threads at once.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual const char* name() const = 0;

  /// Runs `query` against the planner's snapshot. The planner supplies
  /// (and caches) the RP-list/RP-tree build; execution clones the cached
  /// tree, so the planner's state is never consumed. Errors: invalid
  /// query, or a query outside this backend's model (streaming with
  /// tolerance or top-k).
  virtual Result<QueryResult> Execute(QueryPlanner& planner,
                                      const Query& query,
                                      const ExecOptions& options) const = 0;
};

/// The shared immutable executor for `kind`.
const Executor& GetExecutor(BackendKind kind);

}  // namespace rpm::engine

#endif  // RPM_ENGINE_EXECUTOR_H_
