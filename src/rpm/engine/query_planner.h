// Session-scoped query planning: caches the query-independent half of
// RP-growth (RP-list + RP-tree) across the queries of one session and
// reuses looser-threshold builds for stricter re-queries.
//
// Soundness of loose->strict reuse (DESIGN.md §6): for fixed period and
// tolerance, both recurrence upper bounds the RP-list prunes with — Erec
// in the exact model, floor(support/minPS) under gap tolerance — are
// non-increasing in minPS, and an item is a candidate iff its bound
// reaches minRec. So tightening (minPS, minRec) only shrinks the
// candidate set: a tree built at looser thresholds contains a superset of
// the stricter tree's paths. Mining that superset under the stricter
// params emits exactly the stricter pattern set, because every per-pattern
// decision (gate, getRecurrence) is evaluated exactly from the pattern's
// full TS^beta under the *query's* params, and any pattern touching an
// item outside the stricter candidate set fails its gate by the
// anti-monotone bound. Only exploration counters (patterns_examined,
// conditional_trees, ...) reflect the looser build.

#ifndef RPM_ENGINE_QUERY_PLANNER_H_
#define RPM_ENGINE_QUERY_PLANNER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rpm/core/cancellation.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/rp_growth.h"
#include "rpm/engine/dataset_snapshot.h"

namespace rpm::engine {

/// Plans mining runs against one snapshot, caching prepared builds.
/// Thread-safe: executors on different threads may plan against one
/// planner concurrently (the snapshot is immutable; the cache is
/// mutex-guarded; returned builds are shared_ptr-pinned and only read).
class QueryPlanner {
 public:
  /// `snapshot` must be non-null; the planner keeps a reference for its
  /// lifetime.
  explicit QueryPlanner(std::shared_ptr<const DatasetSnapshot> snapshot);

  /// One plannable build, pinned against cache eviction.
  struct Plan {
    std::shared_ptr<const PreparedMining> prepared;
    /// True when served from the session cache (exact hit or a compatible
    /// looser build) rather than built for this call.
    bool reused = false;
  };

  /// Returns a build able to serve `params` (must validate): a cached
  /// build with the same period/tolerance and thresholds no stricter than
  /// `params` (the *tightest* such build, minimizing clone size and dead
  /// exploration), else a fresh build at exactly `params` (cached for
  /// later queries). Mining always clones: plan.prepared->tree is never
  /// consumed.
  ///
  /// A non-null `budget` governs any fresh build (checkpoints in the
  /// RP-list scan and tree construction). When the budget hard-stops
  /// mid-build, the partial build is returned UNCACHED and uncounted — a
  /// partial tree must never serve a later query — and the caller must
  /// check budget->hard_stopped() before mining it.
  ///
  /// `build_threads` parallelizes a fresh build's tree-construction pass
  /// (1 = sequential reference, 0 = hardware). The built tree is
  /// observably identical for every value, so cached builds serve queries
  /// regardless of the thread count they were built with.
  Plan PlanFor(const RpParams& params, QueryBudget* budget = nullptr,
               size_t build_threads = 1);

  const DatasetSnapshot& snapshot() const { return *snapshot_; }
  std::shared_ptr<const DatasetSnapshot> snapshot_ptr() const {
    return snapshot_;
  }

  /// Trees built by this planner so far (a build-once/query-many session
  /// reports 1).
  uint64_t tree_builds() const;
  size_t cache_size() const;

  /// Cached builds kept per planner; the oldest is evicted beyond this.
  /// In-flight plans stay valid (shared_ptr).
  static constexpr size_t kMaxCacheEntries = 8;

 private:
  /// Tightest cached build serving `params`; {nullptr, false} on a miss.
  Plan FindServing(const RpParams& params) const;

  std::shared_ptr<const DatasetSnapshot> snapshot_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const PreparedMining>> cache_;
  uint64_t tree_builds_ = 0;
};

}  // namespace rpm::engine

#endif  // RPM_ENGINE_QUERY_PLANNER_H_
