// QuerySession: the engine's front door — one snapshot, one planner, any
// number of queries on any backend.
//
//   auto snapshot = DatasetSnapshot::Load(path, "tspmf");   // or Create(db)
//   QuerySession session(*snapshot);
//   Query q;
//   q.params = ...;
//   RPM_ASSIGN_OR_RETURN(QueryResult r, session.Run(q));    // sequential
//   RPM_ASSIGN_OR_RETURN(QueryResult r2,
//                        session.Run(q2, BackendKind::kParallel, {8}));
//
// Build work (RP-list + RP-tree) is shared across the session's queries
// whenever thresholds allow (query_planner.h); results are bit-identical
// to fresh standalone runs. Thread-safe for concurrent Run calls.

#ifndef RPM_ENGINE_SESSION_H_
#define RPM_ENGINE_SESSION_H_

#include <memory>

#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query.h"
#include "rpm/engine/query_planner.h"

namespace rpm::engine {

class QuerySession {
 public:
  explicit QuerySession(std::shared_ptr<const DatasetSnapshot> snapshot)
      : planner_(std::move(snapshot)) {}

  /// Executes `query` on `backend`. Errors: invalid query, or a query
  /// outside the backend's model (executor.h).
  Result<QueryResult> Run(const Query& query,
                          BackendKind backend = BackendKind::kSequential,
                          const ExecOptions& options = {}) {
    return GetExecutor(backend).Execute(planner_, query, options);
  }

  const DatasetSnapshot& snapshot() const { return planner_.snapshot(); }
  QueryPlanner& planner() { return planner_; }
  /// RP-tree builds so far (build-once/query-many sessions report 1).
  uint64_t tree_builds() const { return planner_.tree_builds(); }

 private:
  QueryPlanner planner_;
};

}  // namespace rpm::engine

#endif  // RPM_ENGINE_SESSION_H_
