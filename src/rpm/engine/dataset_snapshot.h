// Immutable, shared view of a loaded transaction database — the *data*
// half of the query engine's data/query lifecycle split (DESIGN.md §6).
//
// RP-growth's cost is dominated by query-independent work: scanning the
// TDB, building per-item indexes and constructing the prefix tree. A
// DatasetSnapshot is created once per loaded dataset and then shared
// (shared_ptr, strictly read-only) by any number of query sessions,
// planners and executor threads. Everything derivable from the raw
// transactions alone — canonical transactions, the item dictionary,
// per-item ts-lists and supports, series span — is computed at snapshot
// build time; threshold-dependent structures (RP-list, RP-tree) live in
// QueryPlanner caches keyed by query parameters.

#ifndef RPM_ENGINE_DATASET_SNAPSHOT_H_
#define RPM_ENGINE_DATASET_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"
#include "rpm/timeseries/types.h"

namespace rpm::engine {

/// Read-only dataset snapshot. All accessors are const and safe to call
/// concurrently from any number of threads; the only way to "mutate" a
/// snapshot is to build a new one.
class DatasetSnapshot {
 public:
  /// Wraps an already-loaded database. The database must satisfy the
  /// TransactionDatabase invariants (sorted unique timestamps, sorted
  /// duplicate-free items) — use TdbBuilder / the readers otherwise.
  static std::shared_ptr<const DatasetSnapshot> Create(
      TransactionDatabase db);

  /// Loads a file per `format` — "tspmf" (default), "spmf" or "csv" — and
  /// snapshots it. The single loader behind every rpminer subcommand.
  static Result<std::shared_ptr<const DatasetSnapshot>> Load(
      const std::string& path, const std::string& format);

  const TransactionDatabase& db() const { return db_; }
  const ItemDictionary& dictionary() const { return db_.dictionary(); }

  size_t size() const { return db_.size(); }
  bool empty() const { return db_.empty(); }
  uint32_t ItemUniverseSize() const { return db_.ItemUniverseSize(); }

  /// Series span. Precondition: !empty().
  Timestamp start_ts() const { return db_.start_ts(); }
  Timestamp end_ts() const { return db_.end_ts(); }

  /// TS^{item}, precomputed at snapshot build: sorted, duplicate-free.
  /// Items outside the universe return an empty list.
  const TimestampList& ItemTimestamps(ItemId item) const {
    return item < item_ts_.size() ? item_ts_[item] : empty_;
  }

  /// Sup({item}) without a database scan.
  uint64_t ItemSupport(ItemId item) const {
    return item < item_ts_.size() ? item_ts_[item].size() : 0;
  }

  /// Total item occurrences (sum of per-item supports).
  uint64_t TotalItemOccurrences() const { return total_occurrences_; }

  /// Wall clock spent building the per-item indexes.
  double build_seconds() const { return build_seconds_; }

 private:
  explicit DatasetSnapshot(TransactionDatabase db);

  TransactionDatabase db_;
  std::vector<TimestampList> item_ts_;
  uint64_t total_occurrences_ = 0;
  double build_seconds_ = 0.0;
  TimestampList empty_;
};

}  // namespace rpm::engine

#endif  // RPM_ENGINE_DATASET_SNAPSHOT_H_
