#include "rpm/engine/executor.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "rpm/common/stopwatch.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/pattern_filters.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/core/top_k.h"
#include "rpm/core/windowed_miner.h"

namespace rpm::engine {

namespace {

RpGrowthOptions GrowthOptions(const Query& query, size_t num_threads,
                              QueryBudget* budget) {
  RpGrowthOptions options;
  options.max_pattern_length = query.max_pattern_length;
  options.num_threads = num_threads;
  options.budget = budget;
  if (query.top_k == 0) {
    // Top-k descent re-mines; streaming a round's discoveries to the
    // caller's sink would deliver discarded intermediates.
    options.sink = query.sink;
    options.store_patterns = query.store_patterns;
  }
  return options;
}

/// Builds the query's budget when it has limits or a cancellation token;
/// unlimited un-cancellable queries run budget-free (null) and skip every
/// checkpoint. The unique_ptr owns storage; pass .get() downstream.
std::unique_ptr<QueryBudget> MakeBudget(const Query& query) {
  if (query.limits.unlimited() && query.cancel == nullptr) return nullptr;
  return std::make_unique<QueryBudget>(query.limits, query.cancel);
}

/// Folds the budget verdict into `out` after execution. Runtime faults
/// (bad_alloc, escaped worker exceptions) are reported in-band through
/// QueryResult::status — not as a Result error — so batch drivers see a
/// per-query outcome; Result errors remain reserved for malformed
/// requests.
void FinishGoverned(QueryBudget* budget, QueryResult* out) {
  if (budget == nullptr) return;
  if (out->status.ok()) out->status = budget->status();
  out->resource_usage = budget->usage();
}

/// Maps an escaped execution exception onto the result: the query failed,
/// delivered nothing, and says so cleanly. bad_alloc (real or injected via
/// the rptree.alloc failpoint) is a resource verdict; anything else is
/// surfaced verbatim.
void AbsorbException(QueryResult* out) {
  out->patterns.clear();
  out->truncated = true;
  try {
    throw;
  } catch (const std::bad_alloc&) {
    out->status =
        Status::ResourceExhausted("allocation failed during query execution");
  } catch (const std::exception& e) {
    out->status = Status::Unknown(std::string("query execution failed: ") +
                                  e.what());
  }
}

void ApplyFilters(const TransactionDatabase& db, const Query& query,
                  std::vector<RecurringPattern>* patterns) {
  if (query.closed) *patterns = FilterClosed(db, std::move(*patterns));
  if (query.maximal) *patterns = FilterMaximal(std::move(*patterns));
}

/// The planner-backed execution path shared by the sequential and parallel
/// backends; they differ only in the mining-phase thread count.
Result<QueryResult> ExecutePlanned(QueryPlanner& planner, const Query& query,
                                   size_t num_threads, const char* backend) {
  RPM_RETURN_NOT_OK(query.Validate());
  Stopwatch total;
  QueryResult out;
  out.backend = backend;
  std::unique_ptr<QueryBudget> budget_storage = MakeBudget(query);
  QueryBudget* budget = budget_storage.get();

  try {
    if (query.top_k > 0) {
      if (!planner.snapshot().empty()) {
        // Plan at the descent floor: every round's min_rec is >= the floor,
        // so one cached build serves the whole descent (and any later
        // same-period query).
        TopKOptions top_k_options;
        top_k_options.floor_min_rec = 1;
        top_k_options.max_pattern_length = query.max_pattern_length;
        top_k_options.max_gap_violations = query.params.max_gap_violations;
        RpParams floor_params = query.params;
        floor_params.min_rec = top_k_options.floor_min_rec;
        Stopwatch plan_clock;
        QueryPlanner::Plan plan =
            planner.PlanFor(floor_params, budget, num_threads);
        out.plan_seconds = plan_clock.ElapsedSeconds();
        out.tree_reused = plan.reused;
        if (budget != nullptr && budget->hard_stopped()) {
          // Build aborted: no usable tree, so no descent. Deterministic
          // empty result, flagged via status/truncated below.
          out.truncated = true;
        } else {
          const PreparedMining& prepared = *plan.prepared;

          std::vector<uint64_t> bounds;
          bounds.reserve(prepared.list.entries().size());
          for (const RpListEntry& e : prepared.list.entries()) {
            bounds.push_back(e.erec);
          }
          Stopwatch exec_clock;
          TopKResult top = MineTopKWithRounds(
              query.params.period, query.params.min_ps, query.top_k,
              TopKInitialMinRec(std::move(bounds), query.top_k,
                                top_k_options.floor_min_rec),
              top_k_options, [&](const RpParams& round_params) {
                RpGrowthResult mined = MineFromPrepared(
                    prepared, prepared.tree.Clone(), round_params,
                    GrowthOptions(query, num_threads, budget));
                out.stats = mined.stats;
                // A budget stop mid-descent truncates every later round
                // too (the stop is sticky), so the selection below ran on
                // incomplete rounds: flag the whole top-k result. The
                // descent still terminates promptly — stopped rounds
                // abort at their first checkpoint.
                if (mined.truncated) out.truncated = true;
                return mined;
              });
          out.patterns = std::move(top.patterns);
          out.top_k_rounds = top.rounds;
          out.top_k_final_min_rec = top.final_min_rec;
          ApplyFilters(planner.snapshot().db(), query, &out.patterns);
          out.execute_seconds = exec_clock.ElapsedSeconds();
        }
      }
    } else {
      Stopwatch plan_clock;
      QueryPlanner::Plan plan =
          planner.PlanFor(query.params, budget, num_threads);
      out.plan_seconds = plan_clock.ElapsedSeconds();
      out.tree_reused = plan.reused;
      if (budget != nullptr && budget->hard_stopped()) {
        // Build aborted mid-plan: the partial tree's ts-lists are
        // incomplete (not a prefix of any canonical order), so mining it
        // would fabricate recurrences. Deterministic empty result.
        out.truncated = true;
      } else {
        Stopwatch exec_clock;
        RpGrowthResult mined = MineFromPrepared(
            *plan.prepared, plan.prepared->tree.Clone(), query.params,
            GrowthOptions(query, num_threads, budget));
        out.patterns = std::move(mined.patterns);
        out.stats = mined.stats;
        out.truncated = mined.truncated;
        ApplyFilters(planner.snapshot().db(), query, &out.patterns);
        out.execute_seconds = exec_clock.ElapsedSeconds();
      }
    }
  } catch (...) {
    AbsorbException(&out);
  }

  FinishGoverned(budget, &out);
  out.session_tree_builds = planner.tree_builds();
  out.total_seconds = total.ElapsedSeconds();
  out.stats.total_seconds = out.total_seconds;
  return out;
}

class SequentialExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kSequential);
  }
  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions&) const override {
    return ExecutePlanned(planner, query, /*num_threads=*/1, name());
  }
};

class ParallelExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kParallel);
  }
  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions& options) const override {
    const size_t threads =
        options.threads == 0 ? 0 : std::max<size_t>(2, options.threads);
    return ExecutePlanned(planner, query, threads, name());
  }
};

class StreamingExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kStreaming);
  }

  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions&) const override {
    RPM_RETURN_NOT_OK(query.Validate());
    if (query.params.max_gap_violations > 0) {
      return Status::InvalidArgument(
          "streaming backend implements the exact model only "
          "(--tolerance must be 0)");
    }
    if (query.top_k > 0) {
      return Status::InvalidArgument(
          "streaming backend does not support top-k queries");
    }
    Stopwatch total;
    QueryResult out;
    out.backend = name();
    const TransactionDatabase& db = planner.snapshot().db();
    std::unique_ptr<QueryBudget> budget_storage = MakeBudget(query);
    QueryBudget* budget = budget_storage.get();

    try {
      // "Plan" = incremental ingestion in place of the batch RP-list scan,
      // then tree construction over the stream-derived candidate order.
      // Sorting candidates by (support desc, id asc) reproduces the batch
      // RP-list order exactly (streaming support/Erec match Algorithm 1 per
      // the verify harness), so the tree — and everything downstream — is
      // bit-identical to the batch backends.
      Stopwatch plan_clock;
      PreparedMining prepared;
      prepared.params = query.params;
      prepared.pruning = PruningMode::kErec;
      Stopwatch phase;
      StreamingRpList stream(query.params.period, query.params.min_ps);
      BudgetCheckpointer checkpoint(budget);
      for (const Transaction& tr : db.transactions()) {
        // A partial stream's candidate set is not a prefix of anything
        // meaningful, so a stop here yields a deterministic EMPTY result
        // (flagged below), never a partially-ingested mine.
        if (checkpoint.Check()) break;
        RPM_RETURN_NOT_OK(stream.ObserveTransaction(tr.ts, tr.items));
      }
      prepared.list_seconds = phase.ElapsedSeconds();
      if (budget == nullptr || !budget->hard_stopped()) {
        for (ItemId item = 0; item < stream.ItemUniverseSize(); ++item) {
          if (stream.SupportOf(item) > 0) ++prepared.num_items;
        }
        prepared.items_by_rank = stream.CandidateItems(query.params.min_rec);
        std::sort(prepared.items_by_rank.begin(), prepared.items_by_rank.end(),
                  [&](ItemId a, ItemId b) {
                    const uint64_t sa = stream.SupportOf(a);
                    const uint64_t sb = stream.SupportOf(b);
                    return sa != sb ? sa > sb : a < b;
                  });
        prepared.num_candidate_items = prepared.items_by_rank.size();
        phase.Restart();
        prepared.tree = BuildRankedTree(db, prepared.items_by_rank, budget);
        prepared.initial_tree_nodes = prepared.tree.NodeCount();
        prepared.tree_seconds = phase.ElapsedSeconds();
      }
      out.plan_seconds = plan_clock.ElapsedSeconds();

      if (budget != nullptr && budget->hard_stopped()) {
        out.truncated = true;
      } else {
        Stopwatch exec_clock;
        RpGrowthResult mined = MineFromPrepared(
            prepared, std::move(prepared.tree), query.params,
            GrowthOptions(query, /*num_threads=*/1, budget));
        out.patterns = std::move(mined.patterns);
        out.stats = mined.stats;
        out.truncated = mined.truncated;
        ApplyFilters(db, query, &out.patterns);
        out.execute_seconds = exec_clock.ElapsedSeconds();
      }
    } catch (...) {
      AbsorbException(&out);
    }

    FinishGoverned(budget, &out);
    out.session_tree_builds = planner.tree_builds();
    out.total_seconds = total.ElapsedSeconds();
    out.stats.total_seconds = out.total_seconds;
    return out;
  }
};

/// Replays the snapshot in delta-sized batches through the incremental
/// sliding-window miner and reports the final live window's committed
/// set. On a budget stop mid-stream, the committed set of the prefix of
/// completed deltas IS the deterministic truncated result — the
/// transactional semantics of WindowedMiner::ApplyDelta (DESIGN.md §9).
class WindowedExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kWindowed);
  }

  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions&) const override {
    RPM_RETURN_NOT_OK(query.Validate());
    if (query.window <= 0) {
      return Status::InvalidArgument(
          "windowed backend requires --window > 0 (the sliding-window "
          "width in time units)");
    }
    if (query.params.max_gap_violations > 0) {
      return Status::InvalidArgument(
          "windowed backend implements the exact model only "
          "(--tolerance must be 0)");
    }
    if (query.top_k > 0) {
      return Status::InvalidArgument(
          "windowed backend does not support top-k queries");
    }
    if (query.limits.max_patterns > 0) {
      return Status::InvalidArgument(
          "windowed backend does not support max-patterns (a capped "
          "sub-mine would corrupt the per-delta diffs)");
    }
    if (!query.store_patterns) {
      return Status::InvalidArgument(
          "windowed backend maintains the committed pattern set; "
          "store_patterns=false is not supported");
    }
    Stopwatch total;
    QueryResult out;
    out.backend = name();
    const TransactionDatabase& db = planner.snapshot().db();
    std::unique_ptr<QueryBudget> budget_storage = MakeBudget(query);
    QueryBudget* budget = budget_storage.get();

    try {
      WindowedMinerOptions miner_options;
      miner_options.max_pattern_length = query.max_pattern_length;
      WindowedMiner miner(query.params, query.window, miner_options);
      const size_t delta = query.delta == 0
                               ? std::max<size_t>(db.size(), 1)
                               : static_cast<size_t>(query.delta);
      Stopwatch exec_clock;
      const std::vector<Transaction>& txns = db.transactions();
      for (size_t offset = 0; offset < txns.size(); offset += delta) {
        const size_t end = std::min(txns.size(), offset + delta);
        std::vector<Transaction> batch(txns.begin() + offset,
                                       txns.begin() + end);
        PatternDelta pd = miner.ApplyDelta(batch, budget);
        if (!pd.applied) {
          // Refused delta: the miner still holds the committed prefix.
          out.truncated = true;
          if (!pd.status.ok() && budget == nullptr) out.status = pd.status;
          break;
        }
        if (query.sink) {
          for (const RecurringPattern& p : pd.added) query.sink(p);
        }
      }
      out.patterns = miner.patterns();
      out.stats = miner.mining_stats();
      out.windowed = miner.counters();
      ApplyFilters(db, query, &out.patterns);
      out.execute_seconds = exec_clock.ElapsedSeconds();
    } catch (...) {
      AbsorbException(&out);
    }

    FinishGoverned(budget, &out);
    out.session_tree_builds = planner.tree_builds();
    out.total_seconds = total.ElapsedSeconds();
    out.stats.total_seconds = out.total_seconds;
    return out;
  }
};

}  // namespace

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSequential:
      return "sequential";
    case BackendKind::kParallel:
      return "parallel";
    case BackendKind::kStreaming:
      return "streaming";
    case BackendKind::kWindowed:
      return "windowed";
  }
  return "unknown";
}

Result<BackendKind> ParseBackend(const std::string& name) {
  if (name == "sequential") return BackendKind::kSequential;
  if (name == "parallel") return BackendKind::kParallel;
  if (name == "streaming") return BackendKind::kStreaming;
  if (name == "windowed") return BackendKind::kWindowed;
  return Status::InvalidArgument(
      "unknown backend '" + name +
      "' (expected sequential, parallel, streaming or windowed)");
}

const Executor& GetExecutor(BackendKind kind) {
  static const SequentialExecutor sequential;
  static const ParallelExecutor parallel;
  static const StreamingExecutor streaming;
  static const WindowedExecutor windowed;
  switch (kind) {
    case BackendKind::kParallel:
      return parallel;
    case BackendKind::kStreaming:
      return streaming;
    case BackendKind::kWindowed:
      return windowed;
    case BackendKind::kSequential:
      break;
  }
  return sequential;
}

}  // namespace rpm::engine
