#include "rpm/engine/executor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "rpm/common/stopwatch.h"
#include "rpm/core/pattern_filters.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/core/top_k.h"

namespace rpm::engine {

namespace {

RpGrowthOptions GrowthOptions(const Query& query, size_t num_threads) {
  RpGrowthOptions options;
  options.max_pattern_length = query.max_pattern_length;
  options.num_threads = num_threads;
  if (query.top_k == 0) {
    // Top-k descent re-mines; streaming a round's discoveries to the
    // caller's sink would deliver discarded intermediates.
    options.sink = query.sink;
    options.store_patterns = query.store_patterns;
  }
  return options;
}

void ApplyFilters(const TransactionDatabase& db, const Query& query,
                  std::vector<RecurringPattern>* patterns) {
  if (query.closed) *patterns = FilterClosed(db, std::move(*patterns));
  if (query.maximal) *patterns = FilterMaximal(std::move(*patterns));
}

/// The planner-backed execution path shared by the sequential and parallel
/// backends; they differ only in the mining-phase thread count.
Result<QueryResult> ExecutePlanned(QueryPlanner& planner, const Query& query,
                                   size_t num_threads, const char* backend) {
  RPM_RETURN_NOT_OK(query.Validate());
  Stopwatch total;
  QueryResult out;
  out.backend = backend;

  if (query.top_k > 0) {
    if (!planner.snapshot().empty()) {
      // Plan at the descent floor: every round's min_rec is >= the floor,
      // so one cached build serves the whole descent (and any later
      // same-period query).
      TopKOptions top_k_options;
      top_k_options.floor_min_rec = 1;
      top_k_options.max_pattern_length = query.max_pattern_length;
      top_k_options.max_gap_violations = query.params.max_gap_violations;
      RpParams floor_params = query.params;
      floor_params.min_rec = top_k_options.floor_min_rec;
      Stopwatch plan_clock;
      QueryPlanner::Plan plan = planner.PlanFor(floor_params);
      out.plan_seconds = plan_clock.ElapsedSeconds();
      out.tree_reused = plan.reused;
      const PreparedMining& prepared = *plan.prepared;

      std::vector<uint64_t> bounds;
      bounds.reserve(prepared.list.entries().size());
      for (const RpListEntry& e : prepared.list.entries()) {
        bounds.push_back(e.erec);
      }
      Stopwatch exec_clock;
      TopKResult top =
          MineTopKWithRounds(query.params.period, query.params.min_ps,
                             query.top_k,
                             TopKInitialMinRec(std::move(bounds), query.top_k,
                                               top_k_options.floor_min_rec),
                             top_k_options, [&](const RpParams& round_params) {
                               RpGrowthResult mined = MineFromPrepared(
                                   prepared, prepared.tree.Clone(),
                                   round_params,
                                   GrowthOptions(query, num_threads));
                               out.stats = mined.stats;
                               return mined;
                             });
      out.patterns = std::move(top.patterns);
      out.top_k_rounds = top.rounds;
      out.top_k_final_min_rec = top.final_min_rec;
      ApplyFilters(planner.snapshot().db(), query, &out.patterns);
      out.execute_seconds = exec_clock.ElapsedSeconds();
    }
  } else {
    Stopwatch plan_clock;
    QueryPlanner::Plan plan = planner.PlanFor(query.params);
    out.plan_seconds = plan_clock.ElapsedSeconds();
    out.tree_reused = plan.reused;
    Stopwatch exec_clock;
    RpGrowthResult mined =
        MineFromPrepared(*plan.prepared, plan.prepared->tree.Clone(),
                         query.params, GrowthOptions(query, num_threads));
    out.patterns = std::move(mined.patterns);
    out.stats = mined.stats;
    ApplyFilters(planner.snapshot().db(), query, &out.patterns);
    out.execute_seconds = exec_clock.ElapsedSeconds();
  }

  out.session_tree_builds = planner.tree_builds();
  out.total_seconds = total.ElapsedSeconds();
  out.stats.total_seconds = out.total_seconds;
  return out;
}

class SequentialExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kSequential);
  }
  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions&) const override {
    return ExecutePlanned(planner, query, /*num_threads=*/1, name());
  }
};

class ParallelExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kParallel);
  }
  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions& options) const override {
    const size_t threads =
        options.threads == 0 ? 0 : std::max<size_t>(2, options.threads);
    return ExecutePlanned(planner, query, threads, name());
  }
};

class StreamingExecutor : public Executor {
 public:
  const char* name() const override {
    return BackendName(BackendKind::kStreaming);
  }

  Result<QueryResult> Execute(QueryPlanner& planner, const Query& query,
                              const ExecOptions&) const override {
    RPM_RETURN_NOT_OK(query.Validate());
    if (query.params.max_gap_violations > 0) {
      return Status::InvalidArgument(
          "streaming backend implements the exact model only "
          "(--tolerance must be 0)");
    }
    if (query.top_k > 0) {
      return Status::InvalidArgument(
          "streaming backend does not support top-k queries");
    }
    Stopwatch total;
    QueryResult out;
    out.backend = name();
    const TransactionDatabase& db = planner.snapshot().db();

    // "Plan" = incremental ingestion in place of the batch RP-list scan,
    // then tree construction over the stream-derived candidate order.
    // Sorting candidates by (support desc, id asc) reproduces the batch
    // RP-list order exactly (streaming support/Erec match Algorithm 1 per
    // the verify harness), so the tree — and everything downstream — is
    // bit-identical to the batch backends.
    Stopwatch plan_clock;
    PreparedMining prepared;
    prepared.params = query.params;
    prepared.pruning = PruningMode::kErec;
    Stopwatch phase;
    StreamingRpList stream(query.params.period, query.params.min_ps);
    for (const Transaction& tr : db.transactions()) {
      RPM_RETURN_NOT_OK(stream.ObserveTransaction(tr.ts, tr.items));
    }
    prepared.list_seconds = phase.ElapsedSeconds();
    for (ItemId item = 0; item < stream.ItemUniverseSize(); ++item) {
      if (stream.SupportOf(item) > 0) ++prepared.num_items;
    }
    prepared.items_by_rank = stream.CandidateItems(query.params.min_rec);
    std::sort(prepared.items_by_rank.begin(), prepared.items_by_rank.end(),
              [&](ItemId a, ItemId b) {
                const uint64_t sa = stream.SupportOf(a);
                const uint64_t sb = stream.SupportOf(b);
                return sa != sb ? sa > sb : a < b;
              });
    prepared.num_candidate_items = prepared.items_by_rank.size();
    phase.Restart();
    prepared.tree = BuildRankedTree(db, prepared.items_by_rank);
    prepared.initial_tree_nodes = prepared.tree.NodeCount();
    prepared.tree_seconds = phase.ElapsedSeconds();
    out.plan_seconds = plan_clock.ElapsedSeconds();

    Stopwatch exec_clock;
    RpGrowthResult mined =
        MineFromPrepared(prepared, std::move(prepared.tree), query.params,
                         GrowthOptions(query, /*num_threads=*/1));
    out.patterns = std::move(mined.patterns);
    out.stats = mined.stats;
    ApplyFilters(db, query, &out.patterns);
    out.execute_seconds = exec_clock.ElapsedSeconds();
    out.session_tree_builds = planner.tree_builds();
    out.total_seconds = total.ElapsedSeconds();
    out.stats.total_seconds = out.total_seconds;
    return out;
  }
};

}  // namespace

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSequential:
      return "sequential";
    case BackendKind::kParallel:
      return "parallel";
    case BackendKind::kStreaming:
      return "streaming";
  }
  return "unknown";
}

Result<BackendKind> ParseBackend(const std::string& name) {
  if (name == "sequential") return BackendKind::kSequential;
  if (name == "parallel") return BackendKind::kParallel;
  if (name == "streaming") return BackendKind::kStreaming;
  return Status::InvalidArgument(
      "unknown backend '" + name +
      "' (expected sequential, parallel or streaming)");
}

const Executor& GetExecutor(BackendKind kind) {
  static const SequentialExecutor sequential;
  static const ParallelExecutor parallel;
  static const StreamingExecutor streaming;
  switch (kind) {
    case BackendKind::kParallel:
      return parallel;
    case BackendKind::kStreaming:
      return streaming;
    case BackendKind::kSequential:
      break;
  }
  return sequential;
}

}  // namespace rpm::engine
