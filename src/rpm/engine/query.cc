#include "rpm/engine/query.h"

namespace rpm::engine {

Status Query::Validate() const {
  RPM_RETURN_NOT_OK(params.Validate());
  if (!store_patterns && (closed || maximal || top_k > 0)) {
    return Status::InvalidArgument(
        "store_patterns=false requires the raw pattern stream (no "
        "closed/maximal/top-k)");
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string s = "per=" + std::to_string(params.period) +
                  " minPS=" + std::to_string(params.min_ps);
  if (top_k > 0) {
    s += " top-k=" + std::to_string(top_k);
  } else {
    s += " minRec=" + std::to_string(params.min_rec);
  }
  if (params.max_gap_violations > 0) {
    s += " tolerance=" + std::to_string(params.max_gap_violations);
  }
  if (max_pattern_length > 0) {
    s += " max-length=" + std::to_string(max_pattern_length);
  }
  if (closed) s += " closed";
  if (maximal) s += " maximal";
  return s;
}

}  // namespace rpm::engine
