#include "rpm/engine/query.h"

namespace rpm::engine {

Status Query::Validate() const {
  RPM_RETURN_NOT_OK(params.Validate());
  if (!store_patterns && (closed || maximal || top_k > 0)) {
    return Status::InvalidArgument(
        "store_patterns=false requires the raw pattern stream (no "
        "closed/maximal/top-k)");
  }
  if (limits.max_patterns > 0 && top_k > 0) {
    return Status::InvalidArgument(
        "max_patterns is incompatible with top-k (the descent already "
        "bounds the result; a mid-descent cap would corrupt selection)");
  }
  if (window < 0) {
    return Status::InvalidArgument("window must be >= 0 (time units)");
  }
  if (delta > 0 && window == 0) {
    return Status::InvalidArgument(
        "delta requires a window (--window > 0 selects the sliding-window "
        "model)");
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string s = "per=" + std::to_string(params.period) +
                  " minPS=" + std::to_string(params.min_ps);
  if (top_k > 0) {
    s += " top-k=" + std::to_string(top_k);
  } else {
    s += " minRec=" + std::to_string(params.min_rec);
  }
  if (params.max_gap_violations > 0) {
    s += " tolerance=" + std::to_string(params.max_gap_violations);
  }
  if (max_pattern_length > 0) {
    s += " max-length=" + std::to_string(max_pattern_length);
  }
  if (window > 0) {
    s += " window=" + std::to_string(window);
    if (delta > 0) s += " delta=" + std::to_string(delta);
  }
  if (closed) s += " closed";
  if (maximal) s += " maximal";
  if (limits.timeout_ms > 0) {
    s += " timeout-ms=" + std::to_string(limits.timeout_ms);
  }
  if (limits.memory_budget_bytes > 0) {
    s += " max-memory-bytes=" + std::to_string(limits.memory_budget_bytes);
  }
  if (limits.max_patterns > 0) {
    s += " max-patterns=" + std::to_string(limits.max_patterns);
  }
  return s;
}

}  // namespace rpm::engine
