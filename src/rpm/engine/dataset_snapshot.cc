#include "rpm/engine/dataset_snapshot.h"

#include <utility>

#include "rpm/common/stopwatch.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/timeseries/io/timestamped_csv_io.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm::engine {

DatasetSnapshot::DatasetSnapshot(TransactionDatabase db)
    : db_(std::move(db)) {
  Stopwatch build;
  item_ts_.resize(db_.ItemUniverseSize());
  // Transactions are sorted by strictly increasing timestamp with
  // duplicate-free item sets, so one append pass yields sorted,
  // duplicate-free TS^{item} lists.
  for (const Transaction& tr : db_.transactions()) {
    for (ItemId item : tr.items) {
      item_ts_[item].push_back(tr.ts);
      ++total_occurrences_;
    }
  }
  build_seconds_ = build.ElapsedSeconds();
}

std::shared_ptr<const DatasetSnapshot> DatasetSnapshot::Create(
    TransactionDatabase db) {
  return std::shared_ptr<const DatasetSnapshot>(
      new DatasetSnapshot(std::move(db)));
}

Result<std::shared_ptr<const DatasetSnapshot>> DatasetSnapshot::Load(
    const std::string& path, const std::string& format) {
  if (format == "tspmf") {
    RPM_ASSIGN_OR_RETURN(TransactionDatabase db,
                         ReadTimestampedSpmfFile(path));
    return Create(std::move(db));
  }
  if (format == "spmf") {
    RPM_ASSIGN_OR_RETURN(TransactionDatabase db, ReadSpmfFile(path));
    return Create(std::move(db));
  }
  if (format == "csv") {
    RPM_ASSIGN_OR_RETURN(EventCsvData data, ReadEventCsvFile(path));
    return Create(
        BuildTdbFromSequence(data.sequence, std::move(data.dictionary)));
  }
  return Status::InvalidArgument("unknown --format '" + format +
                                 "' (expected tspmf, spmf or csv)");
}

}  // namespace rpm::engine
