// Declarative mining queries and their uniform results — the *query* half
// of the engine's data/query lifecycle split (DESIGN.md §6).
//
// A Query says WHAT to mine (thresholds, pattern filters, top-k, sink); an
// Executor (executor.h) decides HOW (sequential, parallel, streaming); the
// QueryPlanner (query_planner.h) decides what build work can be skipped.
// Every backend returns the same QueryResult shape, so callers — the CLI,
// the verify harness, analysis reports, benches — consume one interface.

#ifndef RPM_ENGINE_QUERY_H_
#define RPM_ENGINE_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/windowed_miner.h"

namespace rpm::engine {

/// One declarative mining request against a DatasetSnapshot.
struct Query {
  /// per / minPS / minRec / tolerance (Definition 10 + the noise
  /// extension). With top_k > 0, params.min_rec is ignored (the descent
  /// chooses it) but period/min_ps/tolerance still apply.
  RpParams params;
  /// 0 = unlimited (forwarded to RpGrowthOptions).
  size_t max_pattern_length = 0;
  /// When > 0, mine the k most-recurring patterns by threshold descent
  /// instead of using params.min_rec.
  size_t top_k = 0;
  /// Post-mining pattern filters (pattern_filters.h).
  bool closed = false;
  bool maximal = false;
  /// Streaming delivery of discoveries, pre-filter and in discovery order
  /// (forwarded to RpGrowthOptions::sink; unused by top-k queries).
  std::function<void(const RecurringPattern&)> sink;
  /// When false, patterns are only delivered to `sink`; QueryResult
  /// carries stats but an empty pattern list. Incompatible with
  /// closed/maximal/top_k (those need the materialized set).
  bool store_patterns = true;
  /// Resource governance (DESIGN.md §7): wall-clock deadline, tracked-
  /// memory budget and max-patterns cap, all 0 = unlimited. The deadline
  /// covers plan + execute of this query. max_patterns is incompatible
  /// with top_k (the descent's selection and the cap's prefix-commit
  /// semantics contradict each other).
  ResourceLimits limits;
  /// External cancellation (e.g. client disconnect). Not owned; may be
  /// null; must outlive the query execution. Cancelling stops the query
  /// within one checkpoint interval with StatusCode::kCancelled.
  const CancellationToken* cancel = nullptr;
  /// Windowed backend only: width of the sliding window [now - W, now]
  /// in time units. Must be > 0 for --backend=windowed (and is ignored
  /// by the other backends). See executor.h / DESIGN.md §9.
  Timestamp window = 0;
  /// Windowed backend only: transactions per incremental delta when the
  /// snapshot is replayed through the windowed miner. 0 = the whole
  /// snapshot as one delta.
  uint64_t delta = 0;

  /// OK iff params validate and the flag combination is coherent.
  Status Validate() const;

  /// Canonical one-line rendering, e.g.
  ///   "per=2 minPS=3 minRec=2" or "per=2 minPS=3 top-k=5 closed".
  std::string ToString() const;
};

/// Uniform result of executing a Query on any backend.
struct QueryResult {
  /// Mined patterns in canonical itemset order, after closed/maximal
  /// filtering and top-k selection. Interval lists ride along on every
  /// pattern, so downstream analysis never recomputes them from raw
  /// ts-lists (pattern_stats.h falls back only when a pattern arrives
  /// without intervals).
  std::vector<RecurringPattern> patterns;
  /// Miner instrumentation. When the planner reused a looser-threshold
  /// build, tree/exploration counters describe that build (pattern output
  /// is unaffected — see query_planner.h for the soundness argument).
  RpGrowthStats stats;
  /// Executor that produced this result ("sequential", "parallel",
  /// "streaming").
  std::string backend;
  /// True when the planner served the RP-list/RP-tree from its session
  /// cache instead of building them for this query.
  bool tree_reused = false;
  /// Planner tree builds over the whole session, sampled after this query
  /// (a build-once/query-many run ends with 1).
  uint64_t session_tree_builds = 0;
  /// Top-k descent metadata (0 when top_k == 0).
  uint64_t top_k_rounds = 0;
  uint64_t top_k_final_min_rec = 0;
  /// Planning wall clock: cache lookup plus any RP-list/RP-tree build.
  double plan_seconds = 0.0;
  /// Execution wall clock: tree clone, mining, filters.
  double execute_seconds = 0.0;
  /// End-to-end wall clock of this query (excludes snapshot load).
  double total_seconds = 0.0;
  /// Budget verdict (DESIGN.md §7): OK when the query completed (or was
  /// only cut by the soft max-patterns cap); kDeadlineExceeded /
  /// kResourceExhausted / kCancelled when a hard stop ended it early —
  /// `patterns` then holds the deterministic committed prefix (possibly
  /// empty) with any closed/maximal filter applied to that prefix.
  Status status;
  /// True when the budget dropped part of the result (see
  /// RpGrowthResult::truncated for the exact prefix-commit semantics).
  bool truncated = false;
  /// Budget accounting, populated whenever the query ran with limits or a
  /// cancellation token (all-zero otherwise).
  ResourceUsage resource_usage;
  /// Windowed-backend maintenance counters (all-zero for the other
  /// backends). Schedule-invariant like the stats counters.
  WindowedCounters windowed;
};

}  // namespace rpm::engine

#endif  // RPM_ENGINE_QUERY_H_
