// Epoch-aware registry of named DatasetSnapshots — the server's dataset
// catalog (DESIGN.md §10), usable by any long-lived host of many datasets.
//
// Each name maps to a (snapshot, planner, epoch) triple. Swapping a name
// publishes a NEW triple under epoch+1 and leaves the old one untouched:
// in-flight queries that pinned the old entry (shared_ptr) finish against
// the exact snapshot and planner cache they started with, and the old
// epoch's memory is reclaimed when the last pin drops. The registry never
// mutates a published snapshot or planner — hot-swap is publication, not
// modification — so readers need no locking beyond the registry's own
// lookup mutex.
//
// Epochs also version downstream caches: a result cached under
// (name, epoch, params) can never be served after a swap, because the new
// entry's epoch differs (serve/result_cache.h keys on it).

#ifndef RPM_ENGINE_SNAPSHOT_REGISTRY_H_
#define RPM_ENGINE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/query_planner.h"

namespace rpm::engine {

/// One published (name, epoch) generation. Copies pin the snapshot and
/// planner: holding an Entry keeps its generation alive across swaps.
struct RegisteredDataset {
  std::string name;
  /// 1 on first registration, +1 per swap. Never reused within a name.
  uint64_t epoch = 0;
  std::shared_ptr<const DatasetSnapshot> snapshot;
  /// The generation's shared planner: queries of all tenants against this
  /// (name, epoch) share one build cache (QueryPlanner is thread-safe).
  std::shared_ptr<QueryPlanner> planner;
};

/// Thread-safe name -> current-generation map.
class SnapshotRegistry {
 public:
  /// Publishes `snapshot` under `name` at epoch 1.
  /// AlreadyExists when the name is taken (use Swap to replace).
  Status Register(const std::string& name,
                  std::shared_ptr<const DatasetSnapshot> snapshot);

  /// Replaces the current generation of `name` with `snapshot` at
  /// epoch+1 and returns the NEW entry. NotFound when the name was never
  /// registered. Old-generation pins stay valid.
  Result<RegisteredDataset> Swap(
      const std::string& name,
      std::shared_ptr<const DatasetSnapshot> snapshot);

  /// Register-or-swap: the hot-swap entry point for `{"op":"swap"}`.
  Result<RegisteredDataset> Publish(
      const std::string& name,
      std::shared_ptr<const DatasetSnapshot> snapshot);

  /// Current generation of `name`; NotFound otherwise. The returned copy
  /// pins the generation.
  Result<RegisteredDataset> Get(const std::string& name) const;

  /// Current generations, sorted by name (deterministic for `list`).
  std::vector<RegisteredDataset> List() const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RegisteredDataset> datasets_;
};

}  // namespace rpm::engine

#endif  // RPM_ENGINE_SNAPSHOT_REGISTRY_H_
