// Periodic-frequent pattern mining (PF-growth++; Tanbeer et al. PAKDD'09
// [9], Kiran & Kitsuregawa DASFAA'14 [15]) — the "regular pattern" baseline
// of the paper's Sec. 5.4 / Table 8.
//
// A pattern X is periodic-frequent iff
//   Sup(X) >= minSup   and   Per(X) <= maxPer,
// where Per(X) is the largest inter-arrival time of X *including the
// boundary gaps* to the first and last timestamps of the database (so a
// pattern must cycle through the entire series — the "complete cyclic
// repetitions" the paper contrasts recurring patterns against).
//
// Both constraints are anti-monotone, so mining is a plain pattern-growth
// over the same ts-list prefix tree RP-growth uses; only the measures and
// the gate differ.

#ifndef RPM_BASELINES_PF_GROWTH_H_
#define RPM_BASELINES_PF_GROWTH_H_

#include <cstdint>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::baselines {

struct PfParams {
  uint64_t min_sup = 1;    ///< Minimum support (absolute).
  Timestamp max_per = 1;   ///< Maximum allowed periodicity.

  Status Validate() const;
};

struct PeriodicFrequentPattern {
  Itemset items;
  uint64_t support = 0;
  /// max(first gap, inter-arrival times, last gap).
  Timestamp periodicity = 0;

  friend bool operator==(const PeriodicFrequentPattern&,
                         const PeriodicFrequentPattern&) = default;
};

struct PfGrowthResult {
  std::vector<PeriodicFrequentPattern> patterns;
  size_t candidate_items = 0;
  double seconds = 0.0;
};

/// Per(X) for a sorted timestamp list against the database span
/// [db_start, db_end]. Returns max_per+1-style large value semantics are
/// avoided: an empty list yields db_end - db_start (the whole span gap).
Timestamp ComputePeriodicity(const TimestampList& ts, Timestamp db_start,
                             Timestamp db_end);

/// Mines the complete set of periodic-frequent patterns. Deterministic;
/// canonical itemset order.
PfGrowthResult MinePeriodicFrequentPatterns(const TransactionDatabase& db,
                                            const PfParams& params);

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_PF_GROWTH_H_
