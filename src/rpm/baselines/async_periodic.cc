#include "rpm/baselines/async_periodic.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm::baselines {

Status AsyncPeriodicParams::Validate() const {
  if (min_rep < 2) return Status::InvalidArgument("min_rep must be >= 2");
  if (max_period < 1) {
    return Status::InvalidArgument("max_period must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Maximal runs of positions exactly `period` apart with >= min_rep
/// occurrences.
std::vector<ValidSegment> FindValidSegments(
    const std::vector<size_t>& positions, size_t period, size_t min_rep) {
  std::vector<ValidSegment> segments;
  if (positions.empty()) return segments;
  size_t run_start = positions[0];
  size_t reps = 1;
  for (size_t i = 1; i <= positions.size(); ++i) {
    if (i < positions.size() && positions[i] - positions[i - 1] == period) {
      ++reps;
      continue;
    }
    if (reps >= min_rep) segments.push_back({run_start, reps});
    if (i < positions.size()) {
      run_start = positions[i];
      reps = 1;
    }
  }
  return segments;
}

/// Longest chain (max total repetitions) of consecutive segments whose
/// inter-segment gap is <= max_dis. Segments are ordered and disjoint, so
/// skipping a segment never shrinks a gap: maximal chains are contiguous
/// groups, found by one scan.
std::vector<ValidSegment> BestChain(const std::vector<ValidSegment>& segments,
                                    size_t period, size_t max_dis,
                                    size_t* best_total) {
  *best_total = 0;
  std::vector<ValidSegment> best;
  size_t chain_begin = 0;
  size_t total = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (i > chain_begin) {
      const ValidSegment& prev = segments[i - 1];
      const size_t prev_end =
          prev.start_pos + (prev.repetitions - 1) * period;
      if (segments[i].start_pos - prev_end > max_dis) {
        chain_begin = i;
        total = 0;
      }
    }
    total += segments[i].repetitions;
    if (total > *best_total) {
      *best_total = total;
      best.assign(segments.begin() +
                      static_cast<ptrdiff_t>(chain_begin),
                  segments.begin() + static_cast<ptrdiff_t>(i + 1));
    }
  }
  return best;
}

}  // namespace

std::vector<AsyncPeriodicPattern> MineAsyncPeriodicPatterns(
    const TransactionDatabase& db, const AsyncPeriodicParams& params) {
  RPM_CHECK(params.Validate().ok());

  // Per-item POSITION lists (symbolic sequence: index, not timestamp).
  std::vector<std::vector<size_t>> positions(db.ItemUniverseSize());
  for (size_t idx = 0; idx < db.size(); ++idx) {
    for (ItemId item : db.transaction(idx).items) {
      positions[item].push_back(idx);
    }
  }

  std::vector<AsyncPeriodicPattern> out;
  for (ItemId item = 0; item < positions.size(); ++item) {
    if (positions[item].empty()) continue;
    for (size_t period = 1; period <= params.max_period; ++period) {
      std::vector<ValidSegment> segments =
          FindValidSegments(positions[item], period, params.min_rep);
      if (segments.empty()) continue;
      AsyncPeriodicPattern pattern;
      pattern.item = item;
      pattern.period = period;
      pattern.segments = BestChain(segments, period, params.max_dis,
                                   &pattern.total_repetitions);
      out.push_back(std::move(pattern));
    }
  }
  return out;
}

}  // namespace rpm::baselines
