#include "rpm/baselines/ppattern.h"

#include <algorithm>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"

namespace rpm::baselines {

Status PPatternParams::Validate() const {
  if (period <= 0) return Status::InvalidArgument("period must be > 0");
  if (window < 1) return Status::InvalidArgument("window must be >= 1");
  if (min_sup < 1) return Status::InvalidArgument("min_sup must be >= 1");
  return Status::OK();
}

uint64_t CountOnPeriodGaps(const TimestampList& ts, Timestamp period,
                           Timestamp window) {
  const Timestamp bound = period + (window - 1);
  uint64_t count = 0;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (ts[i] - ts[i - 1] <= bound) ++count;
  }
  return count;
}

namespace {

class PPatternMiner {
 public:
  PPatternMiner(const PPatternParams& params, const PPatternOptions& options,
                PPatternResult* result)
      : params_(params), options_(options), result_(result) {}

  void Run(const std::vector<std::pair<ItemId, TimestampList>>& columns) {
    Itemset pattern;
    for (size_t i = 0; i < columns.size() && !result_->truncated; ++i) {
      Extend(columns, i, columns[i].second, &pattern);
    }
  }

 private:
  void Emit(const Itemset& pattern, const TimestampList& ts,
            uint64_t on_period) {
    ++result_->total_found;
    result_->max_length = std::max(result_->max_length, pattern.size());
    if (options_.max_stored_patterns == 0 ||
        result_->patterns.size() < options_.max_stored_patterns) {
      result_->patterns.push_back({pattern, ts.size(), on_period});
    }
    if (options_.max_total_patterns != 0 &&
        result_->total_found >= options_.max_total_patterns) {
      result_->truncated = true;
    }
  }

  void Extend(const std::vector<std::pair<ItemId, TimestampList>>& columns,
              size_t index, const TimestampList& ts, Itemset* pattern) {
    // Support gate (anti-monotone): minSup on-period gaps require at least
    // minSup + 1 occurrences.
    if (ts.size() < params_.min_sup + 1) return;

    pattern->push_back(columns[index].first);
    const uint64_t on_period =
        CountOnPeriodGaps(ts, params_.period, params_.window);
    if (on_period >= params_.min_sup) Emit(*pattern, ts, on_period);

    const bool depth_ok = options_.max_pattern_length == 0 ||
                          pattern->size() < options_.max_pattern_length;
    if (depth_ok) {
      for (size_t j = index + 1;
           j < columns.size() && !result_->truncated; ++j) {
        TimestampList joint;
        joint.reserve(std::min(ts.size(), columns[j].second.size()));
        std::set_intersection(ts.begin(), ts.end(),
                              columns[j].second.begin(),
                              columns[j].second.end(),
                              std::back_inserter(joint));
        if (joint.size() >= params_.min_sup + 1) {
          Extend(columns, j, joint, pattern);
        }
      }
    }
    pattern->pop_back();
  }

  const PPatternParams& params_;
  const PPatternOptions& options_;
  PPatternResult* result_;
};

}  // namespace

PPatternResult MinePPatterns(const TransactionDatabase& db,
                             const PPatternParams& params,
                             const PPatternOptions& options) {
  RPM_CHECK(params.Validate().ok());
  PPatternResult result;
  Stopwatch sw;

  // Phase 1: periodic items.
  std::vector<TimestampList> lists(db.ItemUniverseSize());
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) lists[item].push_back(tr.ts);
  }
  std::vector<std::pair<ItemId, TimestampList>> columns;
  for (ItemId i = 0; i < lists.size(); ++i) {
    if (lists[i].empty()) continue;
    if (CountOnPeriodGaps(lists[i], params.period, params.window) >=
        params.min_sup) {
      columns.emplace_back(i, std::move(lists[i]));
    }
  }
  result.candidate_items = columns.size();

  // Phases 2+3: enumerate + verify.
  PPatternMiner miner(params, options, &result);
  miner.Run(columns);

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const PPattern& a, const PPattern& b) {
              return a.items < b.items;
            });
  result.seconds = sw.ElapsedSeconds();
  return result;
}

}  // namespace rpm::baselines
