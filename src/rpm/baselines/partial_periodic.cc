#include "rpm/baselines/partial_periodic.h"

#include <algorithm>
#include <map>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"

namespace rpm::baselines {

Status PartialPeriodicParams::Validate() const {
  if (period_length < 1) {
    return Status::InvalidArgument("period_length must be >= 1");
  }
  if (min_sup < 1) return Status::InvalidArgument("min_sup must be >= 1");
  return Status::OK();
}

namespace {

/// Vertical column: one extended item plus the sorted ids of segments that
/// contain it.
struct Column {
  PositionedItem key;
  std::vector<uint32_t> segments;
};

class SegmentMiner {
 public:
  SegmentMiner(const PartialPeriodicParams& params,
               const PartialPeriodicOptions& options,
               PartialPeriodicResult* result)
      : params_(params), options_(options), result_(result) {}

  void Run(const std::vector<Column>& columns) {
    std::vector<PositionedItem> elements;
    for (size_t i = 0; i < columns.size() && !result_->truncated; ++i) {
      Extend(columns, i, columns[i].segments, &elements);
    }
  }

 private:
  void Extend(const std::vector<Column>& columns, size_t index,
              const std::vector<uint32_t>& segments,
              std::vector<PositionedItem>* elements) {
    if (segments.size() < params_.min_sup) return;
    elements->push_back(columns[index].key);
    result_->patterns.push_back({*elements, segments.size()});
    if (options_.max_total_patterns != 0 &&
        result_->patterns.size() >= options_.max_total_patterns) {
      result_->truncated = true;
    }
    const bool depth_ok =
        options_.max_pattern_elements == 0 ||
        elements->size() < options_.max_pattern_elements;
    if (depth_ok) {
      for (size_t j = index + 1;
           j < columns.size() && !result_->truncated; ++j) {
        std::vector<uint32_t> joint;
        joint.reserve(std::min(segments.size(), columns[j].segments.size()));
        std::set_intersection(segments.begin(), segments.end(),
                              columns[j].segments.begin(),
                              columns[j].segments.end(),
                              std::back_inserter(joint));
        if (joint.size() >= params_.min_sup) Extend(columns, j, joint, elements);
      }
    }
    elements->pop_back();
  }

  const PartialPeriodicParams& params_;
  const PartialPeriodicOptions& options_;
  PartialPeriodicResult* result_;
};

}  // namespace

PartialPeriodicResult MinePartialPeriodicPatterns(
    const TransactionDatabase& db, const PartialPeriodicParams& params,
    const PartialPeriodicOptions& options) {
  RPM_CHECK(params.Validate().ok());
  PartialPeriodicResult result;
  Stopwatch sw;

  const size_t p = params.period_length;
  result.num_segments = db.size() / p;  // Trailing partial segment dropped.

  // Build vertical columns over extended items (offset, item) -> segments.
  std::map<PositionedItem, std::vector<uint32_t>> vertical;
  for (size_t idx = 0; idx < result.num_segments * p; ++idx) {
    const uint32_t segment = static_cast<uint32_t>(idx / p);
    const uint32_t offset = static_cast<uint32_t>(idx % p);
    for (ItemId item : db.transaction(idx).items) {
      std::vector<uint32_t>& segs = vertical[{offset, item}];
      if (segs.empty() || segs.back() != segment) segs.push_back(segment);
    }
  }
  std::vector<Column> columns;
  columns.reserve(vertical.size());
  for (auto& [key, segs] : vertical) {
    if (segs.size() >= params.min_sup) {
      columns.push_back({key, std::move(segs)});
    }
  }

  SegmentMiner miner(params, options, &result);
  miner.Run(columns);

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const PartialPeriodicPattern& a,
               const PartialPeriodicPattern& b) {
              return a.elements < b.elements;
            });
  result.seconds = sw.ElapsedSeconds();
  return result;
}

std::string FormatPartialPeriodicPattern(const PartialPeriodicPattern& p,
                                         size_t period_length,
                                         const ItemDictionary& dict) {
  std::string out;
  size_t cursor = 0;
  for (uint32_t offset = 0; offset < period_length; ++offset) {
    bool any = false;
    std::string slot = "{";
    while (cursor < p.elements.size() &&
           p.elements[cursor].offset == offset) {
      if (any) slot += ",";
      any = true;
      slot += dict.empty() ? std::to_string(p.elements[cursor].item)
                           : dict.NameOf(p.elements[cursor].item);
      ++cursor;
    }
    slot += "}";
    out += any ? slot : "*";
  }
  return out;
}

}  // namespace rpm::baselines
