// p-pattern mining (Ma & Hellerstein, ICDE'01 [7]) via the periodic-first
// strategy — the second baseline of the paper's Sec. 5.4 / Table 8.
//
// With a known period `per` and window `w`, an inter-arrival time is
// on-period when iat <= per + (w - 1); a pattern X is a p-pattern when its
// number of on-period inter-arrival times over the WHOLE series reaches
// minSup. (With w = 1, the setting of the paper's experiment, the condition
// coincides with the recurring-pattern model's Definition 4: iat <= per.)
//
// Periodic-first mining (the faster of Ma & Hellerstein's two algorithms):
//   1. keep the items whose on-period count reaches minSup;
//   2. enumerate itemsets over those items whose *support* reaches
//      minSup + 1 (necessary, anti-monotone: minSup on-period gaps need
//      minSup+1 occurrences) using vertical timestamp-list intersection;
//   3. verify the on-period count of each enumerated itemset.
//
// This model has no notion of where the periodic behaviour happens, which
// is why low minSup floods it with patterns (Table 8) — the result caps
// below keep the bench harness bounded while still reporting totals.

#ifndef RPM_BASELINES_PPATTERN_H_
#define RPM_BASELINES_PPATTERN_H_

#include <cstdint>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::baselines {

struct PPatternParams {
  Timestamp period = 1;   ///< The known period p.
  Timestamp window = 1;   ///< Ma-Hellerstein window w (>= 1).
  uint64_t min_sup = 1;   ///< Min number of on-period inter-arrival times.

  Status Validate() const;
};

struct PPattern {
  Itemset items;
  uint64_t support = 0;           ///< |TS^X|.
  uint64_t periodic_count = 0;    ///< On-period inter-arrival times.

  friend bool operator==(const PPattern&, const PPattern&) = default;
};

struct PPatternOptions {
  /// Stop materialising patterns beyond this many (0 = keep all). Counting
  /// (total_found) continues regardless.
  size_t max_stored_patterns = 0;
  /// Abandon enumeration entirely after this many found (0 = unlimited);
  /// sets `truncated`. Guards Table 8 runs against the model's known
  /// combinatorial explosion at low minSup.
  size_t max_total_patterns = 0;
  size_t max_pattern_length = 0;  ///< 0 = unlimited.
};

struct PPatternResult {
  std::vector<PPattern> patterns;  ///< Possibly capped; canonical order.
  size_t total_found = 0;          ///< All p-patterns counted.
  size_t max_length = 0;           ///< Longest p-pattern (Table 8 col. II).
  bool truncated = false;          ///< Enumeration hit max_total_patterns.
  size_t candidate_items = 0;
  double seconds = 0.0;
};

/// On-period inter-arrival count of a sorted timestamp list.
uint64_t CountOnPeriodGaps(const TimestampList& ts, Timestamp period,
                           Timestamp window);

PPatternResult MinePPatterns(const TransactionDatabase& db,
                             const PPatternParams& params,
                             const PPatternOptions& options = {});

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_PPATTERN_H_
