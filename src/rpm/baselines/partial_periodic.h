// Segment-wise partial periodic pattern mining (Han, Gong & Yin, KDD'98 /
// Han, Dong & Yin, ICDE'99 — the paper's refs [5, 6]).
//
// This is the symbolic-sequence school the paper positions itself against
// (Sec. 2): the series is cut into consecutive *period segments* of a fixed
// length p — by POSITION, not by timestamp; real inter-arrival times are
// deliberately ignored — and a pattern fixes an itemset at one or more
// offsets within the period (classically rendered "a*b" for p = 3: 'a' at
// offset 0, anything at 1, 'b' at 2). A pattern is partial periodic when
// the number of segments matching it reaches minSup.
//
// Implementation: each (offset, item) pair becomes an extended item; each
// segment becomes a transaction over extended items; mining is a vertical
// (segment-id list) DFS — the standard reduction to frequent itemsets.
//
// Included as the third related-work baseline: together with p-patterns
// (timestamp-aware, whole-series) and PF patterns (complete cycles), it
// lets tests demonstrate exactly the failure mode the paper motivates:
// position-based periodicity misses behaviour that is periodic in *time*
// whenever transactions are missing or unevenly spaced.

#ifndef RPM_BASELINES_PARTIAL_PERIODIC_H_
#define RPM_BASELINES_PARTIAL_PERIODIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::baselines {

struct PartialPeriodicParams {
  /// Period length p, in positions (transactions per segment).
  size_t period_length = 1;
  /// Minimum number of matching segments (absolute).
  uint64_t min_sup = 1;

  Status Validate() const;
};

/// One fixed element of a pattern: `item` must appear at segment offset
/// `offset` (0 <= offset < period_length).
struct PositionedItem {
  uint32_t offset = 0;
  ItemId item = 0;

  friend bool operator==(const PositionedItem&,
                         const PositionedItem&) = default;
  friend auto operator<=>(const PositionedItem&,
                          const PositionedItem&) = default;
};

struct PartialPeriodicPattern {
  /// Sorted by (offset, item); at least one element.
  std::vector<PositionedItem> elements;
  /// Number of segments matching every element.
  uint64_t support = 0;

  friend bool operator==(const PartialPeriodicPattern&,
                         const PartialPeriodicPattern&) = default;
};

struct PartialPeriodicOptions {
  size_t max_pattern_elements = 0;  ///< 0 = unlimited.
  size_t max_total_patterns = 0;    ///< Explosion guard; 0 = unlimited.
};

struct PartialPeriodicResult {
  std::vector<PartialPeriodicPattern> patterns;  ///< Canonical order.
  size_t num_segments = 0;
  bool truncated = false;
  double seconds = 0.0;
};

/// Mines all partial periodic patterns of `db` read as a *symbolic
/// sequence* (transactions in order; timestamps ignored — that is the
/// model's defining property). Trailing transactions that do not fill a
/// whole segment are dropped, as in the original formulation.
PartialPeriodicResult MinePartialPeriodicPatterns(
    const TransactionDatabase& db, const PartialPeriodicParams& params,
    const PartialPeriodicOptions& options = {});

/// Classic rendering, e.g. "{a}*{b}" for p=3 with 'a'@0 and 'b'@2 ('*' for
/// unconstrained offsets). Items print via `dict` when non-empty.
std::string FormatPartialPeriodicPattern(const PartialPeriodicPattern& p,
                                         size_t period_length,
                                         const ItemDictionary& dict);

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_PARTIAL_PERIODIC_H_
