// Asynchronous periodic pattern mining (Yang, Wang & Yu, TKDE 2003 — the
// paper's ref [17]), single-event form.
//
// The fourth related-work model of the paper's Sec. 2: a symbolic-sequence
// model that tolerates noise and *phase shifts*. An item's occurrences (at
// sequence POSITIONS — like the Han model it deliberately ignores real
// timestamps, which is precisely why the paper says it "cannot be extended
// for finding recurring patterns") form
//
//   * valid segments: maximal runs of occurrences exactly `period`
//     positions apart, with at least `min_rep` repetitions;
//   * valid subsequences: chains of valid segments where consecutive
//     segments start within `max_dis` positions of the previous segment's
//     end (the "disturbance" allowance, which is what lets the phase
//     drift between segments).
//
// For each (item, period) the miner reports the longest valid subsequence
// (most total repetitions), the classic optimisation target of the paper's
// 1-pattern case.

#ifndef RPM_BASELINES_ASYNC_PERIODIC_H_
#define RPM_BASELINES_ASYNC_PERIODIC_H_

#include <cstdint>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::baselines {

struct AsyncPeriodicParams {
  /// Segment must repeat at least this many times (>= 2).
  size_t min_rep = 3;
  /// Max positions between one segment's last occurrence and the next
  /// segment's first occurrence within a subsequence.
  size_t max_dis = 5;
  /// Periods 1..max_period are tried (>= 1).
  size_t max_period = 10;

  Status Validate() const;
};

/// One perfectly-periodic run: `repetitions` occurrences starting at
/// sequence position `start_pos`, spaced exactly `period` apart.
struct ValidSegment {
  size_t start_pos = 0;
  size_t repetitions = 0;

  friend bool operator==(const ValidSegment&, const ValidSegment&) = default;
};

/// The longest valid subsequence of one item at one period.
struct AsyncPeriodicPattern {
  ItemId item = 0;
  size_t period = 0;
  /// Sum of repetitions over the chained segments.
  size_t total_repetitions = 0;
  std::vector<ValidSegment> segments;

  /// First and one-past-last sequence position covered.
  size_t start_pos() const {
    return segments.empty() ? 0 : segments.front().start_pos;
  }
  size_t end_pos() const {
    return segments.empty()
               ? 0
               : segments.back().start_pos +
                     (segments.back().repetitions - 1) * period + 1;
  }

  friend bool operator==(const AsyncPeriodicPattern&,
                         const AsyncPeriodicPattern&) = default;
};

/// Mines, for every item and every period in [1, max_period], the longest
/// valid subsequence; patterns with fewer than `min_rep` total repetitions
/// (i.e. no valid segment at all) are omitted. The database is read as a
/// symbolic sequence: position = transaction index, timestamps ignored.
/// Results ordered by (item, period).
std::vector<AsyncPeriodicPattern> MineAsyncPeriodicPatterns(
    const TransactionDatabase& db, const AsyncPeriodicParams& params);

}  // namespace rpm::baselines

#endif  // RPM_BASELINES_ASYNC_PERIODIC_H_
