#include "rpm/baselines/pf_growth.h"

#include <algorithm>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/pattern.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/rp_tree.h"

namespace rpm::baselines {

Status PfParams::Validate() const {
  if (min_sup < 1) return Status::InvalidArgument("min_sup must be >= 1");
  if (max_per <= 0) return Status::InvalidArgument("max_per must be > 0");
  return Status::OK();
}

Timestamp ComputePeriodicity(const TimestampList& ts, Timestamp db_start,
                             Timestamp db_end) {
  if (ts.empty()) return db_end - db_start;
  Timestamp per = ts.front() - db_start;
  for (size_t i = 1; i < ts.size(); ++i) {
    per = std::max(per, ts[i] - ts[i - 1]);
  }
  per = std::max(per, db_end - ts.back());
  return per;
}

namespace {

struct PathRef {
  std::vector<uint32_t> ranks;
  const TimestampList* ts;
};

class PfMiner {
 public:
  PfMiner(const PfParams& params, Timestamp db_start, Timestamp db_end,
          PfGrowthResult* result)
      : params_(params),
        db_start_(db_start),
        db_end_(db_end),
        result_(result) {}

  void MineTree(TsPrefixTree* tree, Itemset* suffix) {
    for (size_t rank = tree->num_ranks(); rank-- > 0;) {
      if (tree->HeadOfRank(rank) != nullptr) {
        ProcessRank(tree, rank, suffix);
        tree->PushUpAndRemove(rank);
      }
    }
  }

 private:
  /// Periodic-frequent acceptance; also the (anti-monotone) growth gate.
  bool Accept(const TimestampList& sorted_ts) const {
    return sorted_ts.size() >= params_.min_sup &&
           ComputePeriodicity(sorted_ts, db_start_, db_end_) <=
               params_.max_per;
  }

  void ProcessRank(TsPrefixTree* tree, size_t rank, Itemset* suffix) {
    std::vector<PathRef> paths;
    TimestampList ts_beta;
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          paths.push_back({path, &ts});
          ts_beta.insert(ts_beta.end(), ts.begin(), ts.end());
        });
    if (ts_beta.empty()) return;
    std::sort(ts_beta.begin(), ts_beta.end());
    if (!Accept(ts_beta)) return;

    suffix->push_back(tree->ItemAtRank(rank));
    PeriodicFrequentPattern pattern;
    pattern.items = *suffix;
    std::sort(pattern.items.begin(), pattern.items.end());
    pattern.support = ts_beta.size();
    pattern.periodicity = ComputePeriodicity(ts_beta, db_start_, db_end_);
    result_->patterns.push_back(std::move(pattern));

    BuildConditionalAndRecurse(tree, paths, suffix);
    suffix->pop_back();
  }

  void BuildConditionalAndRecurse(TsPrefixTree* tree,
                                  const std::vector<PathRef>& paths,
                                  Itemset* suffix) {
    const size_t nranks = tree->num_ranks();
    std::vector<TimestampList> acc(nranks);
    std::vector<uint32_t> touched;
    for (const PathRef& pr : paths) {
      for (uint32_t r : pr.ranks) {
        if (acc[r].empty()) touched.push_back(r);
        acc[r].insert(acc[r].end(), pr.ts->begin(), pr.ts->end());
      }
    }
    if (touched.empty()) return;

    std::vector<uint32_t> kept;
    for (uint32_t r : touched) {
      std::sort(acc[r].begin(), acc[r].end());
      if (Accept(acc[r])) kept.push_back(r);
    }
    if (kept.empty()) return;

    std::sort(kept.begin(), kept.end(), [&](uint32_t a, uint32_t b) {
      return acc[a].size() != acc[b].size() ? acc[a].size() > acc[b].size()
                                            : a < b;
    });
    std::vector<uint32_t> new_rank_of(nranks, kNotCandidate);
    std::vector<ItemId> items_by_rank(kept.size());
    for (uint32_t nr = 0; nr < kept.size(); ++nr) {
      new_rank_of[kept[nr]] = nr;
      items_by_rank[nr] = tree->ItemAtRank(kept[nr]);
    }
    TsPrefixTree cond(std::move(items_by_rank));
    std::vector<uint32_t> mapped;
    for (const PathRef& pr : paths) {
      mapped.clear();
      for (uint32_t r : pr.ranks) {
        if (new_rank_of[r] != kNotCandidate) mapped.push_back(new_rank_of[r]);
      }
      if (mapped.empty()) continue;
      std::sort(mapped.begin(), mapped.end());
      cond.InsertPath(mapped, *pr.ts);
    }
    if (!cond.empty()) MineTree(&cond, suffix);
  }

  const PfParams& params_;
  const Timestamp db_start_;
  const Timestamp db_end_;
  PfGrowthResult* result_;
};

}  // namespace

PfGrowthResult MinePeriodicFrequentPatterns(const TransactionDatabase& db,
                                            const PfParams& params) {
  RPM_CHECK(params.Validate().ok());
  PfGrowthResult result;
  if (db.empty()) return result;
  Stopwatch sw;
  const Timestamp db_start = db.start_ts();
  const Timestamp db_end = db.end_ts();

  // Scan 1: per-item support and periodicity (PF-list).
  struct ItemState {
    uint64_t support = 0;
    Timestamp last_ts = 0;
    Timestamp max_gap = 0;
    bool seen = false;
  };
  std::vector<ItemState> state(db.ItemUniverseSize());
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) {
      ItemState& s = state[item];
      if (!s.seen) {
        s.seen = true;
        s.support = 1;
        s.max_gap = tr.ts - db_start;
      } else {
        ++s.support;
        s.max_gap = std::max(s.max_gap, tr.ts - s.last_ts);
      }
      s.last_ts = tr.ts;
    }
  }
  struct Candidate {
    ItemId item;
    uint64_t support;
  };
  std::vector<Candidate> candidates;
  for (ItemId i = 0; i < state.size(); ++i) {
    ItemState& s = state[i];
    if (!s.seen) continue;
    s.max_gap = std::max(s.max_gap, db_end - s.last_ts);
    if (s.support >= params.min_sup && s.max_gap <= params.max_per) {
      candidates.push_back({i, s.support});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.support != b.support ? a.support > b.support
                                            : a.item < b.item;
            });
  result.candidate_items = candidates.size();

  // Scan 2: PF-tree.
  std::vector<uint32_t> rank_of(db.ItemUniverseSize(), kNotCandidate);
  std::vector<ItemId> items_by_rank(candidates.size());
  for (uint32_t rank = 0; rank < candidates.size(); ++rank) {
    rank_of[candidates[rank].item] = rank;
    items_by_rank[rank] = candidates[rank].item;
  }
  TsPrefixTree tree(std::move(items_by_rank));
  std::vector<uint32_t> ranks;
  for (const Transaction& tr : db.transactions()) {
    ranks.clear();
    for (ItemId item : tr.items) {
      if (rank_of[item] != kNotCandidate) ranks.push_back(rank_of[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    tree.InsertTransaction(ranks, tr.ts);
  }

  // Bottom-up mining.
  Itemset suffix;
  PfMiner miner(params, db_start, db_end, &result);
  miner.MineTree(&tree, &suffix);

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const PeriodicFrequentPattern& a,
               const PeriodicFrequentPattern& b) { return a.items < b.items; });
  result.seconds = sw.ElapsedSeconds();
  return result;
}

}  // namespace rpm::baselines
