// Failing-case minimization (delta debugging) for the differential
// harness.
//
// A randomized case that exposes a divergence is usually far larger than
// the bug needs: ShrinkFailingCase removes transactions (ddmin over
// chunks, then one-by-one) and then individual items, re-running the
// failure predicate after every candidate reduction, until the database
// is 1-minimal — no single transaction or item can be removed without the
// divergence disappearing. RenderFixture turns the survivor into a
// ready-to-paste C++ MakeDatabase literal for a regression test.

#ifndef RPM_VERIFY_SHRINKER_H_
#define RPM_VERIFY_SHRINKER_H_

#include <functional>
#include <string>

#include "rpm/core/mining_params.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::verify {

/// Returns true when the (reduced) case still exhibits the failure.
/// Must be deterministic: the shrinker re-evaluates it many times.
using FailurePredicate =
    std::function<bool(const TransactionDatabase&, const RpParams&)>;

struct ShrinkResult {
  TransactionDatabase db;  ///< 1-minimal failing database.
  RpParams params;         ///< Unchanged from the input case.
  size_t original_transactions = 0;
  size_t shrunk_transactions = 0;
  size_t predicate_evaluations = 0;  ///< Cost accounting.
};

/// Minimizes `db` under `still_fails`. Precondition: still_fails(db,
/// params) is true (checked — a non-failing input is returned unchanged
/// with shrunk == original).
ShrinkResult ShrinkFailingCase(const TransactionDatabase& db,
                               const RpParams& params,
                               const FailurePredicate& still_fails);

/// Renders the case as a compilable C++ fixture:
///
///   RpParams params;
///   params.period = 2;
///   ...
///   TransactionDatabase db = MakeDatabase({
///       {1, {0, 2}},
///       {3, {0}},
///   });
std::string RenderFixture(const TransactionDatabase& db,
                          const RpParams& params);

}  // namespace rpm::verify

#endif  // RPM_VERIFY_SHRINKER_H_
