// Seeded fault injection for the robustness harness (DESIGN.md §7.4).
//
// The injector is the high half of the failpoint framework: it installs a
// process-wide handler (rpm/common/failpoint.h) and decides, per site hit,
// whether that site simulates its failure. Decisions are a pure function
// of (seed, site, per-site hit index), so a failing campaign trial replays
// exactly from its seed.
//
// Failpoint catalog (sites compiled into the library):
//   rptree.alloc     — RP-tree node allocation throws std::bad_alloc
//                      (build, clone and conditional trees).
//   io.read          — reader input stream fails mid-file (CSV/SPMF).
//   threadpool.spawn — std::thread creation fails; ParallelFor degrades
//                      to fewer workers (floor: the calling thread).
//   worker.task      — a mining worker task throws; ParallelFor contains
//                      and rethrows on the caller.
//   clock.skip       — a deadline probe behaves as if the clock jumped
//                      past the deadline (only queries with a timeout).
//   serve.accept     — the query server drops a just-accepted
//                      connection (serve/server.h).
//   serve.read       — a server session's read path fails; that one
//                      connection closes.
//   serve.write      — a server response write fails; that one
//                      connection closes.
//   serve.session.alloc — server session setup fails; the client gets a
//                      structured UNAVAILABLE line, then close.
//
// The campaign (RunFaultCampaign / `rpminer verify --faults=N`) arms the
// injector around end-to-end operations and asserts the library's
// contract: every injected fault surfaces as a clean non-OK Status or a
// governed partial result — never a crash, leak, deadlock, or poisoned
// planner cache.

#ifndef RPM_VERIFY_FAULT_INJECTION_H_
#define RPM_VERIFY_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rpm/core/cancellation.h"

namespace rpm {

struct FaultInjectionOptions {
  /// Seed for the per-hit fire decision (deterministic replay handle).
  uint64_t seed = 0;
  /// Probability that any given hit fires, in basis points of 10^6
  /// (e.g. 20000 = 2%). Ignored when fire_on_nth is set.
  uint32_t probability_ppm = 20000;
  /// When nonempty, only this exact site may fire.
  std::string site_filter;
  /// When nonzero, fire deterministically on exactly the nth hit of each
  /// (filtered) site instead of probabilistically.
  uint64_t fire_on_nth = 0;
};

/// Process-wide seeded injector. Thread-safe (sites fire from mining
/// workers); a mutex per hit is acceptable because the injector is only
/// armed inside fault campaigns, never in production runs.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Installs the failpoint handler with `options`. Hit/fire counters
  /// reset. Not reentrant — one armed scope at a time.
  void Arm(const FaultInjectionOptions& options);

  /// Removes the handler. Counters survive until the next Arm.
  void Disarm();

  bool armed() const;

  /// Handler entry: true when `site` should simulate a failure now.
  bool ShouldFail(const char* site);

  /// Total fired (simulated) failures since the last Arm.
  uint64_t fires() const;
  /// Total site hits (fired or not) since the last Arm.
  uint64_t hits() const;
  /// Per-site hit/fire counts since the last Arm.
  std::map<std::string, std::pair<uint64_t, uint64_t>> SiteCounts() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  bool armed_ = false;
  FaultInjectionOptions options_;
  std::map<std::string, std::pair<uint64_t, uint64_t>> sites_;  // hits/fires
  uint64_t hits_ = 0;
  uint64_t fires_ = 0;
};

/// RAII arm/disarm around one faulted operation.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultInjectionOptions& options) {
    FaultInjector::Instance().Arm(options);
  }
  ~ScopedFaultInjection() { FaultInjector::Instance().Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// --- Campaign driver (`rpminer verify --faults=N --seed=S`) ----------------

struct FaultCampaignOptions {
  size_t trials = 200;
  uint64_t seed = 1;
  /// Per-hit fire probability for the probabilistic sites.
  uint32_t probability_ppm = 20000;
  /// Worker threads for the parallel backend under faults.
  size_t parallel_threads = 4;
  /// Stop after this many contract violations.
  size_t max_failures = 5;
  /// Also run each trial's query through an in-process query server with
  /// the serve.* transport failpoints armed (serve/server.h): armed
  /// responses must be bit-identical to ground truth or structured
  /// failures, and the disarmed rerun must be bit-identical — with zero
  /// server aborts or hangs.
  bool serve_trials = true;
  /// Cooperative cancellation (SIGINT/SIGTERM): checked between trials;
  /// a cancelled campaign reports the trials completed so far. Not owned;
  /// may be null.
  const CancellationToken* cancel = nullptr;
};

struct FaultCampaignReport {
  size_t trials_run = 0;
  /// Faults actually fired by the injector across all trials.
  uint64_t faults_injected = 0;
  /// Operations (I/O round-trips, queries) executed while armed.
  size_t faulted_operations = 0;
  /// Operations that saw a fault and recovered with a clean Status.
  size_t clean_recoveries = 0;
  /// Contract violations: escaped exception, wrong post-fault behavior,
  /// or a poisoned planner cache. Empty = pass.
  std::vector<std::string> failures;
  /// True when the campaign stopped early on external cancellation; the
  /// counters then cover the trials that completed.
  bool cancelled = false;

  bool ok() const { return failures.empty(); }
  std::string ToString() const;
};

/// Runs `trials` deterministic fault trials: each generates a verify case,
/// records disarmed ground truth, then runs I/O round-trips and
/// sequential/parallel/streaming queries with the injector armed —
/// asserting every injected fault surfaces as a clean Status (or governed
/// truncation) and that a disarmed rerun on the same session still matches
/// ground truth (no poisoned planner cache).
FaultCampaignReport RunFaultCampaign(const FaultCampaignOptions& options);

}  // namespace rpm

#endif  // RPM_VERIFY_FAULT_INJECTION_H_
