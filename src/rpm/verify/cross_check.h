// Differential cross-checks for one (database, params) case.
//
// Three independent implementations of the paper's semantics exist in this
// codebase: the definitional oracle (brute_force.h), sequential/parallel
// RP-growth (rp_growth.h) and the streaming RP-list
// (streaming_rp_list.h). CrossCheckCase runs a case through all of them
// and reports every observable disagreement:
//
//   (a) oracle      — sequential RP-growth output vs MineByDefinition,
//                     pattern-by-pattern (items, support, interval list);
//   (b) parallel    — parallel RP-growth vs sequential: identical pattern
//                     sets AND identical schedule-invariant stats counters;
//   (c) streaming   — StreamingRpList fed transaction-by-transaction vs
//                     batch Algorithm 1: per-item support, Erec,
//                     reconstructed interesting intervals and the
//                     candidate-item set. Exact model only (skipped when
//                     params.max_gap_violations > 0).
//   (d) engine      — the query engine (engine/session.h) over one shared
//                     snapshot: every backend's QueryResult vs the direct
//                     sequential run (patterns AND schedule-invariant
//                     counters), plus the planner's loose->strict tree
//                     reuse vs a fresh stricter run — reused results must
//                     be bit-identical and reuse must actually trigger.
//   (e) simd        — the columnar gate kernels (core/ts_block.h) vs the
//                     scalar measures on every item's ts-list: the
//                     dispatched masked ComputeGateAndIntervals /
//                     ComputeRecurrenceUpperBound against the scalar
//                     loops, and every compiled ComputeBreakMasks variant
//                     the hardware admits against the scalar kernel.
//   (f) windowed    — the incremental sliding-window miner
//                     (core/windowed_miner.h) replaying the case in
//                     deltas: after EVERY delta, the committed pattern
//                     set vs a from-scratch batch mine of the live
//                     window, the per-delta diff's reconstruction
//                     identity, and the engine's windowed backend
//                     end-to-end. Exact model only (skipped when
//                     params.max_gap_violations > 0).
//
// The parallel run of check (b) builds its RP-tree through the
// partitioned parallel build, so (b) also differentially validates
// parallel-vs-sequential tree construction on every case.
//
// The sequential miner is injectable so harness tests can plant a known
// bug (e.g. an off-by-one on interval ends) and assert the checks catch
// it and the shrinker minimizes it.

#ifndef RPM_VERIFY_CROSS_CHECK_H_
#define RPM_VERIFY_CROSS_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::verify {

/// One observed disagreement between two implementations.
struct Divergence {
  /// Which cross-check noticed it: "oracle", "parallel", "streaming",
  /// "engine", "simd" or "windowed".
  std::string check;
  /// Human-readable description, e.g.
  ///   "pattern {0 2}: support 5 (rp-growth) vs 6 (oracle)".
  std::string detail;
};

/// Drop-in replacement for the sequential miner (fault injection).
using MinerFn = std::function<std::vector<RecurringPattern>(
    const TransactionDatabase&, const RpParams&)>;

struct CrossCheckOptions {
  bool check_oracle = true;
  bool check_parallel = true;
  bool check_streaming = true;
  bool check_engine = true;
  bool check_simd = true;
  bool check_windowed = true;
  /// Worker threads for the parallel run of check (b).
  size_t parallel_threads = 4;
  /// When set, replaces sequential RP-growth as the subject of checks (a)
  /// and (b). The parallel run and its stats baseline always use the real
  /// miner, so an injected bug shows up as a divergence, not a crash.
  MinerFn sequential_miner;
  /// Stop after this many divergences per check (the rest are elided with
  /// a summary line). 0 = unlimited.
  size_t max_divergences_per_check = 8;
};

/// Runs the enabled cross-checks; empty result == all implementations
/// agree on this case. `params` must validate and the item universe must
/// fit the oracle when check_oracle is on.
std::vector<Divergence> CrossCheckCase(const TransactionDatabase& db,
                                       const RpParams& params,
                                       const CrossCheckOptions& options = {});

}  // namespace rpm::verify

#endif  // RPM_VERIFY_CROSS_CHECK_H_
