#include "rpm/verify/cross_check.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "rpm/common/cpu_features.h"
#include "rpm/core/brute_force.h"
#include "rpm/core/measures.h"
#include "rpm/core/time_gap.h"
#include "rpm/core/ts_block.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/core/windowed_miner.h"
#include "rpm/engine/session.h"

namespace rpm::verify {

namespace {

std::string ItemsetToString(const Itemset& items) {
  std::string s = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(items[i]);
  }
  s += '}';
  return s;
}

std::string IntervalsToString(const std::vector<PeriodicInterval>& ivs) {
  std::string s = "[";
  for (size_t i = 0; i < ivs.size(); ++i) {
    if (i > 0) s += ' ';
    s += '[';
    s += std::to_string(ivs[i].begin);
    s += ',';
    s += std::to_string(ivs[i].end);
    s += "]:";
    s += std::to_string(ivs[i].periodic_support);
  }
  s += ']';
  return s;
}

/// Collects divergences for one check, enforcing the per-check cap.
class Collector {
 public:
  Collector(std::string check, size_t cap, std::vector<Divergence>* out)
      : check_(std::move(check)), cap_(cap), out_(out) {}

  void Add(std::string detail) {
    ++count_;
    if (cap_ == 0 || count_ <= cap_) {
      out_->push_back({check_, std::move(detail)});
    }
  }

  ~Collector() {
    if (cap_ != 0 && count_ > cap_) {
      out_->push_back({check_, "... and " + std::to_string(count_ - cap_) +
                                   " further divergence(s) elided"});
    }
  }

 private:
  std::string check_;
  size_t cap_;
  size_t count_ = 0;
  std::vector<Divergence>* out_;
};

/// Merge-walks two canonically sorted pattern sets and reports every
/// missing, extra, or value-mismatched pattern. `got_name`/`want_name`
/// label the two sides in the rendered details.
void DiffPatternSets(std::vector<RecurringPattern> got,
                     std::vector<RecurringPattern> want,
                     const char* got_name, const char* want_name,
                     Collector* out) {
  SortPatternsCanonically(&got);
  SortPatternsCanonically(&want);
  size_t i = 0, j = 0;
  auto items_less = [](const RecurringPattern& a, const RecurringPattern& b) {
    return std::lexicographical_compare(a.items.begin(), a.items.end(),
                                        b.items.begin(), b.items.end());
  };
  while (i < got.size() || j < want.size()) {
    if (j == want.size() ||
        (i < got.size() && items_less(got[i], want[j]))) {
      out->Add("pattern " + ItemsetToString(got[i].items) + " emitted by " +
               got_name + " but not by " + want_name);
      ++i;
    } else if (i == got.size() || items_less(want[j], got[i])) {
      out->Add("pattern " + ItemsetToString(want[j].items) + " emitted by " +
               want_name + " but not by " + got_name);
      ++j;
    } else {
      const RecurringPattern& g = got[i];
      const RecurringPattern& w = want[j];
      if (g.support != w.support) {
        out->Add("pattern " + ItemsetToString(g.items) + ": support " +
                 std::to_string(g.support) + " (" + got_name + ") vs " +
                 std::to_string(w.support) + " (" + want_name + ")");
      }
      if (g.intervals != w.intervals) {
        out->Add("pattern " + ItemsetToString(g.items) + ": intervals " +
                 IntervalsToString(g.intervals) + " (" + got_name + ") vs " +
                 IntervalsToString(w.intervals) + " (" + want_name + ")");
      }
      ++i;
      ++j;
    }
  }
}

void CompareStat(const char* name, size_t got, size_t want, Collector* out,
                 const char* got_name = "sequential",
                 const char* want_name = "parallel") {
  if (got != want) {
    out->Add(std::string("stat ") + name + ": " + std::to_string(got) +
             " (" + got_name + ") vs " + std::to_string(want) + " (" +
             want_name + ")");
  }
}

/// Every schedule-invariant counter two equivalent runs must agree on.
void CompareInvariantStats(const RpGrowthStats& got,
                           const RpGrowthStats& want, Collector* out,
                           const char* got_name = "sequential",
                           const char* want_name = "parallel") {
  CompareStat("num_items", got.num_items, want.num_items, out, got_name,
              want_name);
  CompareStat("num_candidate_items", got.num_candidate_items,
              want.num_candidate_items, out, got_name, want_name);
  CompareStat("initial_tree_nodes", got.initial_tree_nodes,
              want.initial_tree_nodes, out, got_name, want_name);
  CompareStat("conditional_trees", got.conditional_trees,
              want.conditional_trees, out, got_name, want_name);
  CompareStat("patterns_examined", got.patterns_examined,
              want.patterns_examined, out, got_name, want_name);
  CompareStat("patterns_emitted", got.patterns_emitted,
              want.patterns_emitted, out, got_name, want_name);
  CompareStat("merge_invocations", got.merge_invocations,
              want.merge_invocations, out, got_name, want_name);
  CompareStat("runs_merged", got.runs_merged, want.runs_merged, out,
              got_name, want_name);
  CompareStat("timestamps_merged", got.timestamps_merged,
              want.timestamps_merged, out, got_name, want_name);
  CompareStat("gate_lists_scanned", got.gate_lists_scanned,
              want.gate_lists_scanned, out, got_name, want_name);
  CompareStat("gate_gaps_scanned", got.gate_gaps_scanned,
              want.gate_gaps_scanned, out, got_name, want_name);
  CompareStat("gate_gaps_simd", got.gate_gaps_simd, want.gate_gaps_simd,
              out, got_name, want_name);
}

/// Check (e): the columnar kernels against the scalar measures, per item.
/// Uses each item's full ts-list (the longest lists a case offers — the
/// case generator's adversarial cases put INT64-extreme timestamps and
/// run-boundary shapes here), comparing (i) the dispatched masked fused
/// gate and Erec bound against the scalar loops and (ii) every compiled
/// ComputeBreakMasks variant the hardware admits against the scalar
/// kernel, bit for bit.
void CheckSimd(const TransactionDatabase& db, const RpParams& params,
               Collector* out) {
  TsBlockScratch scratch;
  std::vector<PeriodicInterval> masked_intervals;
  std::vector<PeriodicInterval> scalar_intervals;
  std::vector<uint64_t> want_masks;
  std::vector<uint64_t> got_masks;
  const SimdLevel hw = HardwareSimdLevel();
  for (ItemId item = 0; item < db.ItemUniverseSize(); ++item) {
    const TimestampList ts = db.TimestampsOf({item});
    if (ts.empty()) continue;
    const std::string tag = "item " + std::to_string(item);

    const GateOutcome masked = ComputeGateAndIntervals(
        ts, params, &masked_intervals, &scratch, nullptr);
    const GateOutcome scalar =
        ComputeGateAndIntervals(ts, params, &scalar_intervals);
    if (masked.passes != scalar.passes ||
        masked.recurrence_upper_bound != scalar.recurrence_upper_bound) {
      out->Add(tag + ": gate " + std::to_string(masked.recurrence_upper_bound) +
               (masked.passes ? " pass" : " fail") + " (masked) vs " +
               std::to_string(scalar.recurrence_upper_bound) +
               (scalar.passes ? " pass" : " fail") + " (scalar)");
    }
    if (masked_intervals != scalar_intervals) {
      out->Add(tag + ": intervals " + IntervalsToString(masked_intervals) +
               " (masked) vs " + IntervalsToString(scalar_intervals) +
               " (scalar)");
    }
    const uint64_t masked_bound =
        ComputeRecurrenceUpperBound(ts, params, &scratch, nullptr);
    const uint64_t scalar_bound = ComputeRecurrenceUpperBound(ts, params);
    if (masked_bound != scalar_bound) {
      out->Add(tag + ": recurrence bound " + std::to_string(masked_bound) +
               " (masked) vs " + std::to_string(scalar_bound) + " (scalar)");
    }

    if (ts.size() < 2) continue;
    want_masks.assign(TsBlockWords(ts.size()), ~uint64_t{0});
    ComputeBreakMasksScalar(ts.data(), ts.size(),
                            static_cast<uint64_t>(params.period),
                            want_masks.data());
    const struct {
      const char* name;
      SimdLevel level;
      void (*fn)(const Timestamp*, size_t, uint64_t, uint64_t*);
    } variants[] = {
        {"sse2", SimdLevel::kSse2, ComputeBreakMasksSse2},
        {"avx2", SimdLevel::kAvx2, ComputeBreakMasksAvx2},
    };
    for (const auto& variant : variants) {
      if (hw < variant.level) continue;
      got_masks.assign(want_masks.size(), ~uint64_t{0});
      variant.fn(ts.data(), ts.size(), static_cast<uint64_t>(params.period),
                 got_masks.data());
      if (got_masks != want_masks) {
        out->Add(tag + ": break masks diverge between scalar and " +
                 variant.name + " kernels");
      }
    }
  }
}

void CheckStreaming(const TransactionDatabase& db, const RpParams& params,
                    Collector* out) {
  StreamingRpList stream(params.period, params.min_ps);
  for (const Transaction& tr : db.transactions()) {
    Status s = stream.ObserveTransaction(tr.ts, tr.items);
    if (!s.ok()) {
      out->Add("ObserveTransaction(ts=" + std::to_string(tr.ts) +
               ") rejected a valid transaction: " + s.message());
      return;
    }
  }

  const RpList batch = BuildRpList(db, params);
  for (const RpListEntry& entry : batch.entries()) {
    const ItemId item = entry.item;
    const std::string tag = "item " + std::to_string(item);
    if (stream.SupportOf(item) != entry.support) {
      out->Add(tag + ": support " + std::to_string(stream.SupportOf(item)) +
               " (streaming) vs " + std::to_string(entry.support) +
               " (batch)");
    }
    if (stream.ErecOf(item) != entry.erec) {
      out->Add(tag + ": erec " + std::to_string(stream.ErecOf(item)) +
               " (streaming) vs " + std::to_string(entry.erec) + " (batch)");
    }
    // Reconstruct IPI^{item} from the streaming state: the closed
    // interesting intervals plus the open run when it already qualifies.
    std::vector<PeriodicInterval> streamed = stream.ClosedIntervalsOf(item);
    PeriodicInterval open = stream.OpenRunOf(item);
    if (open.periodic_support >= params.min_ps) streamed.push_back(open);
    std::vector<PeriodicInterval> expected = FindInterestingIntervals(
        db.TimestampsOf({item}), params.period, params.min_ps);
    if (streamed != expected) {
      out->Add(tag + ": intervals " + IntervalsToString(streamed) +
               " (streaming) vs " + IntervalsToString(expected) + " (batch)");
    }
    if (stream.RecurrenceOf(item) != expected.size()) {
      out->Add(tag + ": recurrence " +
               std::to_string(stream.RecurrenceOf(item)) +
               " (streaming) vs " + std::to_string(expected.size()) +
               " (batch)");
    }
  }

  std::vector<ItemId> stream_cand = stream.CandidateItems(params.min_rec);
  std::sort(stream_cand.begin(), stream_cand.end());
  std::vector<ItemId> batch_cand;
  for (const RpListEntry& e : batch.candidates()) batch_cand.push_back(e.item);
  std::sort(batch_cand.begin(), batch_cand.end());
  if (stream_cand != batch_cand) {
    out->Add("candidate set: " + ItemsetToString(stream_cand) +
             " (streaming) vs " + ItemsetToString(batch_cand) + " (batch)");
  }
}

/// Check (d): one snapshot + one session serve the case's params on every
/// backend; each QueryResult must be bit-identical to the direct
/// sequential run `seq` — patterns, intervals AND schedule-invariant
/// counters. Then a stricter query on the same session must (i) actually
/// reuse the looser cached tree and (ii) still match a fresh stricter
/// standalone run exactly.
void CheckEngine(const TransactionDatabase& db, const RpParams& params,
                 const RpGrowthResult& seq, const CrossCheckOptions& options,
                 Collector* out) {
  engine::QuerySession session(engine::DatasetSnapshot::Create(db));
  engine::Query query;
  query.params = params;

  Result<engine::QueryResult> sequential = session.Run(query);
  if (!sequential.ok()) {
    out->Add("sequential backend failed: " + sequential.status().ToString());
    return;
  }
  DiffPatternSets(sequential->patterns, seq.patterns, "engine-sequential",
                  "direct", out);
  // The engine's first run plans at exactly the case's params, so even the
  // build/exploration counters must match a standalone run bit-for-bit.
  CompareInvariantStats(sequential->stats, seq.stats, out,
                        "engine-sequential", "direct");

  engine::ExecOptions exec;
  exec.threads = options.parallel_threads;
  Result<engine::QueryResult> parallel =
      session.Run(query, engine::BackendKind::kParallel, exec);
  if (!parallel.ok()) {
    out->Add("parallel backend failed: " + parallel.status().ToString());
  } else {
    DiffPatternSets(parallel->patterns, seq.patterns, "engine-parallel",
                    "direct", out);
    if (!parallel->tree_reused) {
      out->Add("parallel backend rebuilt the tree the session had cached");
    }
  }

  // Streaming implements the exact model only.
  if (params.max_gap_violations == 0) {
    Result<engine::QueryResult> streaming =
        session.Run(query, engine::BackendKind::kStreaming);
    if (!streaming.ok()) {
      out->Add("streaming backend failed: " + streaming.status().ToString());
    } else {
      DiffPatternSets(streaming->patterns, seq.patterns, "engine-streaming",
                      "direct", out);
    }
  }

  // Loose->strict planner reuse: the session already holds a build at
  // `params`; a stricter query must be served from it and still agree with
  // a fresh stricter run.
  RpParams strict = params;
  strict.min_ps = params.min_ps + 1;
  strict.min_rec = params.min_rec + 1;
  engine::Query strict_query;
  strict_query.params = strict;
  Result<engine::QueryResult> reused = session.Run(strict_query);
  if (!reused.ok()) {
    out->Add("strict re-query failed: " + reused.status().ToString());
    return;
  }
  if (!reused->tree_reused) {
    out->Add("planner rebuilt instead of reusing the looser tree for " +
             strict.ToString());
  }
  if (reused->session_tree_builds != 1) {
    out->Add("session built " + std::to_string(reused->session_tree_builds) +
             " trees; build-once/query-many expects 1");
  }
  RpGrowthResult fresh = MineRecurringPatterns(db, strict);
  DiffPatternSets(reused->patterns, fresh.patterns, "engine-reused", "fresh",
                  out);
}

/// Check (f): the incremental sliding-window miner vs batch re-mining.
/// The case's transaction stream is replayed through a WindowedMiner in
/// multi-transaction deltas under two window regimes — a tight window
/// (half the case's time span) that exercises expiry, retirement and
/// compaction, and an effectively unbounded window that pins the
/// everything-stays-live path. After EVERY delta:
///   * windowed ≡ batch — the committed pattern set must equal a
///     from-scratch MineRecurringPatterns over the live window contents;
///   * diff identity — (previous set − removed − changed) ∪ changed-new ∪
///     added must reconstruct the committed set exactly.
/// Finally the engine's windowed backend replays the same schedule and
/// must land on the same final set.
void CheckWindowed(const TransactionDatabase& db, const RpParams& params,
                   Collector* out) {
  const std::vector<Transaction>& txns = db.transactions();
  if (txns.empty()) return;

  const Timestamp span = SaturatingGap(txns.front().ts, txns.back().ts);
  struct Config {
    Timestamp window;
    size_t delta;
  };
  const Config configs[] = {
      {std::max<Timestamp>(1, span / 2), std::max<size_t>(1, txns.size() / 4)},
      {std::numeric_limits<Timestamp>::max(), txns.size()},
  };

  std::vector<RecurringPattern> tight_final;
  for (size_t ci = 0; ci < 2; ++ci) {
    const Config& config = configs[ci];
    // A tiny compaction floor so the reclamation path actually runs on
    // harness-sized cases (the production default of 64 would rarely
    // trigger here).
    WindowedMinerOptions wopt;
    wopt.compact_min_stored = 4;
    WindowedMiner miner(params, config.window, wopt);

    std::vector<RecurringPattern> prev;
    for (size_t offset = 0; offset < txns.size(); offset += config.delta) {
      const size_t end = std::min(txns.size(), offset + config.delta);
      std::vector<Transaction> batch(txns.begin() + offset,
                                     txns.begin() + end);
      PatternDelta pd = miner.ApplyDelta(batch);
      const std::string tag = "window=" + std::to_string(config.window) +
                              " delta@" + std::to_string(offset);
      if (!pd.applied) {
        out->Add(tag + ": delta refused: " + pd.status.ToString());
        return;
      }

      // Diff reconstruction identity.
      std::vector<Itemset> dropped;
      dropped.reserve(pd.removed.size() + pd.changed.size());
      for (const RecurringPattern& p : pd.removed) dropped.push_back(p.items);
      for (const RecurringPattern& p : pd.changed) dropped.push_back(p.items);
      std::sort(dropped.begin(), dropped.end());
      std::vector<RecurringPattern> rebuilt;
      for (const RecurringPattern& p : prev) {
        if (!std::binary_search(dropped.begin(), dropped.end(), p.items)) {
          rebuilt.push_back(p);
        }
      }
      rebuilt.insert(rebuilt.end(), pd.changed.begin(), pd.changed.end());
      rebuilt.insert(rebuilt.end(), pd.added.begin(), pd.added.end());
      SortPatternsCanonically(&rebuilt);
      if (rebuilt != miner.patterns()) {
        out->Add(tag + ": diff (added=" + std::to_string(pd.added.size()) +
                 " removed=" + std::to_string(pd.removed.size()) +
                 " changed=" + std::to_string(pd.changed.size()) +
                 ") does not reconstruct the committed pattern set");
      }

      // Windowed ≡ batch-mine-of-window-contents.
      RpGrowthResult fresh =
          MineRecurringPatterns(miner.WindowSnapshot(), params);
      DiffPatternSets(miner.patterns(), fresh.patterns, "windowed", "batch",
                      out);
      prev = miner.patterns();
    }
    if (ci == 0) tight_final = std::move(prev);
  }

  // Engine arm: the windowed backend replaying the tight schedule must
  // commit exactly the direct miner's final set.
  engine::QuerySession session(engine::DatasetSnapshot::Create(db));
  engine::Query query;
  query.params = params;
  query.window = configs[0].window;
  query.delta = configs[0].delta;
  Result<engine::QueryResult> run =
      session.Run(query, engine::BackendKind::kWindowed);
  if (!run.ok()) {
    out->Add("engine windowed backend failed: " + run.status().ToString());
    return;
  }
  DiffPatternSets(run->patterns, tight_final, "engine-windowed", "direct",
                  out);
}

}  // namespace

std::vector<Divergence> CrossCheckCase(const TransactionDatabase& db,
                                       const RpParams& params,
                                       const CrossCheckOptions& options) {
  std::vector<Divergence> divergences;

  // The real sequential run anchors everything: the parallel pattern/stats
  // baseline, and — unless a fault-injected miner stands in — the subject
  // of the oracle check.
  RpGrowthOptions seq_options;
  seq_options.num_threads = 1;
  RpGrowthResult seq = MineRecurringPatterns(db, params, seq_options);
  std::vector<RecurringPattern> subject =
      options.sequential_miner ? options.sequential_miner(db, params)
                               : seq.patterns;

  if (options.check_oracle &&
      db.ItemUniverseSize() <= kMaxDefinitionalItems) {
    Collector out("oracle", options.max_divergences_per_check, &divergences);
    DiffPatternSets(subject, MineByDefinition(db, params), "rp-growth",
                    "oracle", &out);
  }

  if (options.check_parallel) {
    Collector out("parallel", options.max_divergences_per_check,
                  &divergences);
    RpGrowthOptions par_options;
    par_options.num_threads =
        options.parallel_threads > 1 ? options.parallel_threads : 2;
    RpGrowthResult par = MineRecurringPatterns(db, params, par_options);
    DiffPatternSets(subject, par.patterns, "sequential", "parallel", &out);
    // Schedule-invariant counters must not depend on the worker count.
    CompareInvariantStats(seq.stats, par.stats, &out);
  }

  // The streaming structure implements the exact model only.
  if (options.check_streaming && params.max_gap_violations == 0) {
    Collector out("streaming", options.max_divergences_per_check,
                  &divergences);
    CheckStreaming(db, params, &out);
  }

  if (options.check_engine) {
    Collector out("engine", options.max_divergences_per_check, &divergences);
    CheckEngine(db, params, seq, options, &out);
  }

  if (options.check_simd) {
    Collector out("simd", options.max_divergences_per_check, &divergences);
    CheckSimd(db, params, &out);
  }

  // The windowed miner implements the exact model only.
  if (options.check_windowed && params.max_gap_violations == 0) {
    Collector out("windowed", options.max_divergences_per_check,
                  &divergences);
    CheckWindowed(db, params, &out);
  }

  return divergences;
}

}  // namespace rpm::verify
