#include "rpm/verify/cross_check.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "rpm/core/brute_force.h"
#include "rpm/core/measures.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/streaming_rp_list.h"

namespace rpm::verify {

namespace {

std::string ItemsetToString(const Itemset& items) {
  std::string s = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(items[i]);
  }
  s += '}';
  return s;
}

std::string IntervalsToString(const std::vector<PeriodicInterval>& ivs) {
  std::string s = "[";
  for (size_t i = 0; i < ivs.size(); ++i) {
    if (i > 0) s += ' ';
    s += '[';
    s += std::to_string(ivs[i].begin);
    s += ',';
    s += std::to_string(ivs[i].end);
    s += "]:";
    s += std::to_string(ivs[i].periodic_support);
  }
  s += ']';
  return s;
}

/// Collects divergences for one check, enforcing the per-check cap.
class Collector {
 public:
  Collector(std::string check, size_t cap, std::vector<Divergence>* out)
      : check_(std::move(check)), cap_(cap), out_(out) {}

  void Add(std::string detail) {
    ++count_;
    if (cap_ == 0 || count_ <= cap_) {
      out_->push_back({check_, std::move(detail)});
    }
  }

  ~Collector() {
    if (cap_ != 0 && count_ > cap_) {
      out_->push_back({check_, "... and " + std::to_string(count_ - cap_) +
                                   " further divergence(s) elided"});
    }
  }

 private:
  std::string check_;
  size_t cap_;
  size_t count_ = 0;
  std::vector<Divergence>* out_;
};

/// Merge-walks two canonically sorted pattern sets and reports every
/// missing, extra, or value-mismatched pattern. `got_name`/`want_name`
/// label the two sides in the rendered details.
void DiffPatternSets(std::vector<RecurringPattern> got,
                     std::vector<RecurringPattern> want,
                     const char* got_name, const char* want_name,
                     Collector* out) {
  SortPatternsCanonically(&got);
  SortPatternsCanonically(&want);
  size_t i = 0, j = 0;
  auto items_less = [](const RecurringPattern& a, const RecurringPattern& b) {
    return std::lexicographical_compare(a.items.begin(), a.items.end(),
                                        b.items.begin(), b.items.end());
  };
  while (i < got.size() || j < want.size()) {
    if (j == want.size() ||
        (i < got.size() && items_less(got[i], want[j]))) {
      out->Add("pattern " + ItemsetToString(got[i].items) + " emitted by " +
               got_name + " but not by " + want_name);
      ++i;
    } else if (i == got.size() || items_less(want[j], got[i])) {
      out->Add("pattern " + ItemsetToString(want[j].items) + " emitted by " +
               want_name + " but not by " + got_name);
      ++j;
    } else {
      const RecurringPattern& g = got[i];
      const RecurringPattern& w = want[j];
      if (g.support != w.support) {
        out->Add("pattern " + ItemsetToString(g.items) + ": support " +
                 std::to_string(g.support) + " (" + got_name + ") vs " +
                 std::to_string(w.support) + " (" + want_name + ")");
      }
      if (g.intervals != w.intervals) {
        out->Add("pattern " + ItemsetToString(g.items) + ": intervals " +
                 IntervalsToString(g.intervals) + " (" + got_name + ") vs " +
                 IntervalsToString(w.intervals) + " (" + want_name + ")");
      }
      ++i;
      ++j;
    }
  }
}

void CompareStat(const char* name, size_t seq, size_t par, Collector* out) {
  if (seq != par) {
    out->Add(std::string("stat ") + name + ": " + std::to_string(seq) +
             " (sequential) vs " + std::to_string(par) + " (parallel)");
  }
}

void CheckStreaming(const TransactionDatabase& db, const RpParams& params,
                    Collector* out) {
  StreamingRpList stream(params.period, params.min_ps);
  for (const Transaction& tr : db.transactions()) {
    Status s = stream.ObserveTransaction(tr.ts, tr.items);
    if (!s.ok()) {
      out->Add("ObserveTransaction(ts=" + std::to_string(tr.ts) +
               ") rejected a valid transaction: " + s.message());
      return;
    }
  }

  const RpList batch = BuildRpList(db, params);
  for (const RpListEntry& entry : batch.entries()) {
    const ItemId item = entry.item;
    const std::string tag = "item " + std::to_string(item);
    if (stream.SupportOf(item) != entry.support) {
      out->Add(tag + ": support " + std::to_string(stream.SupportOf(item)) +
               " (streaming) vs " + std::to_string(entry.support) +
               " (batch)");
    }
    if (stream.ErecOf(item) != entry.erec) {
      out->Add(tag + ": erec " + std::to_string(stream.ErecOf(item)) +
               " (streaming) vs " + std::to_string(entry.erec) + " (batch)");
    }
    // Reconstruct IPI^{item} from the streaming state: the closed
    // interesting intervals plus the open run when it already qualifies.
    std::vector<PeriodicInterval> streamed = stream.ClosedIntervalsOf(item);
    PeriodicInterval open = stream.OpenRunOf(item);
    if (open.periodic_support >= params.min_ps) streamed.push_back(open);
    std::vector<PeriodicInterval> expected = FindInterestingIntervals(
        db.TimestampsOf({item}), params.period, params.min_ps);
    if (streamed != expected) {
      out->Add(tag + ": intervals " + IntervalsToString(streamed) +
               " (streaming) vs " + IntervalsToString(expected) + " (batch)");
    }
    if (stream.RecurrenceOf(item) != expected.size()) {
      out->Add(tag + ": recurrence " +
               std::to_string(stream.RecurrenceOf(item)) +
               " (streaming) vs " + std::to_string(expected.size()) +
               " (batch)");
    }
  }

  std::vector<ItemId> stream_cand = stream.CandidateItems(params.min_rec);
  std::sort(stream_cand.begin(), stream_cand.end());
  std::vector<ItemId> batch_cand;
  for (const RpListEntry& e : batch.candidates()) batch_cand.push_back(e.item);
  std::sort(batch_cand.begin(), batch_cand.end());
  if (stream_cand != batch_cand) {
    out->Add("candidate set: " + ItemsetToString(stream_cand) +
             " (streaming) vs " + ItemsetToString(batch_cand) + " (batch)");
  }
}

}  // namespace

std::vector<Divergence> CrossCheckCase(const TransactionDatabase& db,
                                       const RpParams& params,
                                       const CrossCheckOptions& options) {
  std::vector<Divergence> divergences;

  // The real sequential run anchors everything: the parallel pattern/stats
  // baseline, and — unless a fault-injected miner stands in — the subject
  // of the oracle check.
  RpGrowthOptions seq_options;
  seq_options.num_threads = 1;
  RpGrowthResult seq = MineRecurringPatterns(db, params, seq_options);
  std::vector<RecurringPattern> subject =
      options.sequential_miner ? options.sequential_miner(db, params)
                               : seq.patterns;

  if (options.check_oracle &&
      db.ItemUniverseSize() <= kMaxDefinitionalItems) {
    Collector out("oracle", options.max_divergences_per_check, &divergences);
    DiffPatternSets(subject, MineByDefinition(db, params), "rp-growth",
                    "oracle", &out);
  }

  if (options.check_parallel) {
    Collector out("parallel", options.max_divergences_per_check,
                  &divergences);
    RpGrowthOptions par_options;
    par_options.num_threads =
        options.parallel_threads > 1 ? options.parallel_threads : 2;
    RpGrowthResult par = MineRecurringPatterns(db, params, par_options);
    DiffPatternSets(subject, par.patterns, "sequential", "parallel", &out);
    // Schedule-invariant counters must not depend on the worker count.
    const RpGrowthStats& a = seq.stats;
    const RpGrowthStats& b = par.stats;
    CompareStat("num_items", a.num_items, b.num_items, &out);
    CompareStat("num_candidate_items", a.num_candidate_items,
                b.num_candidate_items, &out);
    CompareStat("initial_tree_nodes", a.initial_tree_nodes,
                b.initial_tree_nodes, &out);
    CompareStat("conditional_trees", a.conditional_trees, b.conditional_trees,
                &out);
    CompareStat("patterns_examined", a.patterns_examined, b.patterns_examined,
                &out);
    CompareStat("patterns_emitted", a.patterns_emitted, b.patterns_emitted,
                &out);
    CompareStat("merge_invocations", a.merge_invocations, b.merge_invocations,
                &out);
    CompareStat("runs_merged", a.runs_merged, b.runs_merged, &out);
    CompareStat("timestamps_merged", a.timestamps_merged, b.timestamps_merged,
                &out);
  }

  // The streaming structure implements the exact model only.
  if (options.check_streaming && params.max_gap_violations == 0) {
    Collector out("streaming", options.max_divergences_per_check,
                  &divergences);
    CheckStreaming(db, params, &out);
  }

  return divergences;
}

}  // namespace rpm::verify
