// Seeded randomized-case generation for the differential correctness
// harness (src/rpm/verify).
//
// Each case is a (database, thresholds) pair drawn from one of several
// generation regimes chosen to stress the boundary semantics of the
// recurrence measures: gaps straddling the period threshold exactly,
// negative timestamps, timestamps adjacent to INT64_MIN/MAX (where naive
// gap subtraction overflows), dense bursts, and degenerate shapes (empty
// databases, single transactions, single items). Case `index` under seed
// `seed` is a pure function of (seed, index): a failing case reported by
// the harness is reproducible from those two numbers alone.

#ifndef RPM_VERIFY_CASE_GENERATOR_H_
#define RPM_VERIFY_CASE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "rpm/core/mining_params.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::verify {

/// One generated harness case.
struct VerifyCase {
  /// Generation-regime tag ("dense", "period_boundary", "int64_extreme",
  /// ...) — reported with failures so regressions localize quickly.
  std::string regime;
  TransactionDatabase db;
  RpParams params;
};

/// All regime tags MakeVerifyCase can produce, for reporting.
inline constexpr const char* kRegimes[] = {
    "dense",           // Small gaps, several items, bursts planted.
    "sparse",          // Long gaps, low item probability.
    "period_boundary", // Every gap lands in {period-1, period, period+1}.
    "negative_ts",     // Timeline entirely below zero.
    "int64_extreme",   // Timestamps adjacent to INT64_MIN and/or INT64_MAX.
    "degenerate",      // Empty db, one transaction, or one item.
};

/// Deterministically derives case `index` of stream `seed`. The item
/// universe is kept small enough for the definitional oracle
/// (<= kMaxDefinitionalItems).
VerifyCase MakeVerifyCase(uint64_t seed, uint64_t index);

}  // namespace rpm::verify

#endif  // RPM_VERIFY_CASE_GENERATOR_H_
