// Top-level differential-verification harness: generate N seeded cases,
// cross-check each against the oracle / parallel / streaming
// implementations, and shrink every failing case to a minimal
// ready-to-paste fixture.
//
// Exposed on the CLI as `rpminer verify --cases=N --seed=S`; a bounded run
// is wired into ctest (label `verify`) and scripts/verify.sh. The
// invariant catalog the checks enforce is documented in DESIGN.md §5b.

#ifndef RPM_VERIFY_HARNESS_H_
#define RPM_VERIFY_HARNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpm/core/cancellation.h"
#include "rpm/verify/cross_check.h"

namespace rpm::verify {

struct VerifyOptions {
  uint64_t cases = 200;
  uint64_t seed = 7;
  /// Collect (and shrink) at most this many failing cases before stopping
  /// early — shrinking is the expensive part of a failing run.
  size_t max_failures = 5;
  /// Check toggles, thread count and (for harness self-tests) the
  /// fault-injected miner.
  CrossCheckOptions cross_check;
  /// When set, every generated case is mined at these params instead of
  /// the case's own (CLI: `rpminer verify --fixed-params --per=...`) —
  /// lets one parameter point be hammered across all database regimes.
  std::optional<RpParams> fixed_params;
  /// Cooperative cancellation (SIGINT/SIGTERM): checked between cases; a
  /// cancelled run reports the cases completed so far. Not owned; may be
  /// null.
  const CancellationToken* cancel = nullptr;
};

/// One failing case, fully processed: the divergences observed on the
/// generated database plus the minimized reproduction.
struct CaseFailure {
  uint64_t case_index = 0;
  std::string regime;
  std::vector<Divergence> divergences;
  size_t original_transactions = 0;
  size_t shrunk_transactions = 0;
  /// C++ fixture (RenderFixture) of the *shrunk* database and params.
  std::string fixture;
};

struct VerifyReport {
  uint64_t cases_run = 0;
  uint64_t oracle_checks = 0;
  uint64_t parallel_checks = 0;
  /// Streaming checks actually executed (tolerant-mode cases skip it).
  uint64_t streaming_checks = 0;
  /// Query-engine purity/reuse checks executed.
  uint64_t engine_checks = 0;
  /// Windowed ≡ batch-of-window checks executed (exact-model cases only).
  uint64_t windowed_checks = 0;
  std::vector<CaseFailure> failures;
  /// True when the run stopped early on external cancellation.
  bool cancelled = false;

  bool ok() const { return failures.empty(); }
};

/// Runs the harness. Deterministic in (options.cases, options.seed): the
/// same pair replays the same case stream bit-for-bit.
VerifyReport RunVerification(const VerifyOptions& options);

/// Human-readable report: one summary block, then one section per failure
/// with the divergence list, the shrink statistics and the fixture.
std::string FormatReport(const VerifyReport& report,
                         const VerifyOptions& options);

}  // namespace rpm::verify

#endif  // RPM_VERIFY_HARNESS_H_
