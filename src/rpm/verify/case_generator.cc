#include "rpm/verify/case_generator.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "rpm/common/random.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm::verify {

namespace {

constexpr Timestamp kInt64Max = std::numeric_limits<Timestamp>::max();
constexpr Timestamp kInt64Min = std::numeric_limits<Timestamp>::min();

/// Shape knobs one regime hands to the shared transaction filler.
struct Shape {
  uint32_t num_items = 6;
  size_t num_timestamps = 40;
  double item_prob = 0.3;
  bool plant_burst = true;
};

/// Strictly increasing timeline: `start`, then `gaps` applied in order.
/// Gap sums are computed in uint64, so callers may place `start` anywhere
/// in the int64 range as long as start + sum(gaps) does not pass
/// INT64_MAX (callers arrange that).
TimestampList TimelineFrom(Timestamp start,
                           const std::vector<uint64_t>& gaps) {
  TimestampList ts;
  ts.reserve(gaps.size() + 1);
  uint64_t cursor = static_cast<uint64_t>(start);
  ts.push_back(start);
  for (uint64_t gap : gaps) {
    cursor += gap;
    ts.push_back(static_cast<Timestamp>(cursor));
  }
  return ts;
}

std::vector<uint64_t> RandomGaps(Rng* rng, size_t count, uint64_t lo,
                                 uint64_t hi) {
  std::vector<uint64_t> gaps(count);
  for (uint64_t& g : gaps) g = lo + rng->NextUint64(hi - lo + 1);
  return gaps;
}

/// Fills transactions over `timeline`: background item draws plus one
/// planted burst pair over a window (so random cases actually contain
/// recurring structure). Timestamps whose transaction comes up empty are
/// simply skipped — the paper's model allows timestamps with no events.
TransactionDatabase FillTransactions(Rng* rng, const Shape& shape,
                                     const TimestampList& timeline) {
  ItemId burst_a = 0, burst_b = 0;
  size_t burst_begin = 0, burst_end = 0;
  if (shape.plant_burst && shape.num_items >= 1 && !timeline.empty()) {
    burst_a = static_cast<ItemId>(rng->NextUint64(shape.num_items));
    burst_b = static_cast<ItemId>(rng->NextUint64(shape.num_items));
    burst_begin = rng->NextUint64(timeline.size());
    burst_end = std::min(timeline.size(),
                         burst_begin + 4 + rng->NextUint64(timeline.size()));
  }
  TdbBuilder builder;
  Itemset txn;
  for (size_t i = 0; i < timeline.size(); ++i) {
    txn.clear();
    for (ItemId item = 0; item < shape.num_items; ++item) {
      if (rng->NextBernoulli(shape.item_prob)) txn.push_back(item);
    }
    if (shape.plant_burst && i >= burst_begin && i < burst_end &&
        rng->NextBernoulli(0.85)) {
      txn.push_back(burst_a);
      txn.push_back(burst_b);
    }
    if (!txn.empty()) builder.AddTransaction(timeline[i], txn);
  }
  return builder.Build();
}

RpParams RandomParams(Rng* rng, Timestamp period) {
  RpParams params;
  params.period = period;
  params.min_ps = 1 + rng->NextUint64(4);
  params.min_rec = 1 + rng->NextUint64(3);
  // Tolerant mode every fifth draw or so: a different bound and interval
  // logic worth differential coverage (streaming implements only the
  // exact model; the cross-checker skips check (c) for these).
  params.max_gap_violations =
      rng->NextBernoulli(0.2) ? 1 + static_cast<uint32_t>(rng->NextUint64(2))
                              : 0;
  return params;
}

VerifyCase MakeDense(Rng* rng) {
  Shape shape;
  shape.num_items = 3 + static_cast<uint32_t>(rng->NextUint64(5));
  shape.num_timestamps = 20 + rng->NextUint64(60);
  shape.item_prob = 0.35;
  Timestamp start = rng->NextInt64(-50, 50);
  TimestampList timeline = TimelineFrom(
      start, RandomGaps(rng, shape.num_timestamps - 1, 1, 3));
  VerifyCase c;
  c.regime = "dense";
  c.db = FillTransactions(rng, shape, timeline);
  c.params = RandomParams(rng, 1 + rng->NextInt64(1, 5));
  return c;
}

VerifyCase MakeSparse(Rng* rng) {
  Shape shape;
  shape.num_items = 2 + static_cast<uint32_t>(rng->NextUint64(4));
  shape.num_timestamps = 15 + rng->NextUint64(40);
  shape.item_prob = 0.15;
  TimestampList timeline = TimelineFrom(
      rng->NextInt64(-1000, 1000),
      RandomGaps(rng, shape.num_timestamps - 1, 1, 12));
  VerifyCase c;
  c.regime = "sparse";
  c.db = FillTransactions(rng, shape, timeline);
  c.params = RandomParams(rng, rng->NextInt64(2, 10));
  return c;
}

VerifyCase MakePeriodBoundary(Rng* rng) {
  // Every gap is period-1, period, or period+1: the <= comparison decides
  // each transition, so off-by-one bugs in the interval logic surface here.
  const Timestamp period = rng->NextInt64(2, 5);
  Shape shape;
  shape.num_items = 2 + static_cast<uint32_t>(rng->NextUint64(4));
  shape.num_timestamps = 25 + rng->NextUint64(50);
  shape.item_prob = 0.4;
  std::vector<uint64_t> gaps(shape.num_timestamps - 1);
  for (uint64_t& g : gaps) {
    g = static_cast<uint64_t>(period) - 1 + rng->NextUint64(3);
    if (g == 0) g = 1;
  }
  TimestampList timeline = TimelineFrom(rng->NextInt64(-20, 20), gaps);
  VerifyCase c;
  c.regime = "period_boundary";
  c.db = FillTransactions(rng, shape, timeline);
  c.params = RandomParams(rng, period);
  return c;
}

VerifyCase MakeNegative(Rng* rng) {
  Shape shape;
  shape.num_items = 2 + static_cast<uint32_t>(rng->NextUint64(4));
  shape.num_timestamps = 20 + rng->NextUint64(40);
  shape.item_prob = 0.3;
  // Entirely below zero: start low enough that the whole timeline stays
  // negative (max total span is num_timestamps * 4).
  Timestamp start =
      -static_cast<Timestamp>(shape.num_timestamps) * 4 -
      rng->NextInt64(1, 5000);
  TimestampList timeline = TimelineFrom(
      start, RandomGaps(rng, shape.num_timestamps - 1, 1, 4));
  VerifyCase c;
  c.regime = "negative_ts";
  c.db = FillTransactions(rng, shape, timeline);
  c.params = RandomParams(rng, rng->NextInt64(1, 5));
  return c;
}

VerifyCase MakeInt64Extreme(Rng* rng) {
  Shape shape;
  shape.num_items = 2 + static_cast<uint32_t>(rng->NextUint64(3));
  shape.num_timestamps = 12 + rng->NextUint64(20);
  shape.item_prob = 0.45;
  const size_t n = shape.num_timestamps;
  std::vector<uint64_t> gaps = RandomGaps(rng, n - 1, 1, 3);
  TimestampList timeline;
  switch (rng->NextUint64(3)) {
    case 0: {
      // Hugging INT64_MIN.
      timeline = TimelineFrom(kInt64Min + rng->NextInt64(0, 3), gaps);
      break;
    }
    case 1: {
      // Hugging INT64_MAX: walk the gap sum backwards from the top.
      uint64_t span = 0;
      for (uint64_t g : gaps) span += g;
      timeline = TimelineFrom(
          static_cast<Timestamp>(static_cast<uint64_t>(kInt64Max) - span -
                                 rng->NextUint64(4)),
          gaps);
      break;
    }
    default: {
      // Straddling: a run near INT64_MIN, then a jump to a run ending at
      // INT64_MAX — the inter-run gap exceeds int64 and overflows any
      // naive signed subtraction.
      const size_t low_n = 2 + rng->NextUint64(n / 2);
      std::vector<uint64_t> low_gaps(gaps.begin(),
                                     gaps.begin() + (low_n - 1));
      TimestampList low =
          TimelineFrom(kInt64Min + rng->NextInt64(0, 3), low_gaps);
      std::vector<uint64_t> high_gaps(gaps.begin() + (low_n - 1),
                                      gaps.end());
      uint64_t span = 0;
      for (uint64_t g : high_gaps) span += g;
      TimestampList high = TimelineFrom(
          static_cast<Timestamp>(static_cast<uint64_t>(kInt64Max) - span),
          high_gaps);
      timeline = std::move(low);
      timeline.insert(timeline.end(), high.begin(), high.end());
      break;
    }
  }
  VerifyCase c;
  c.regime = "int64_extreme";
  c.db = FillTransactions(rng, shape, timeline);
  // Mix small periods with huge ones (huge periods make *every* gap
  // periodic except the straddle jump).
  Timestamp period = rng->NextBernoulli(0.5)
                         ? rng->NextInt64(1, 4)
                         : kInt64Max / 2 + rng->NextInt64(0, 1000);
  c.params = RandomParams(rng, period);
  return c;
}

VerifyCase MakeDegenerate(Rng* rng) {
  VerifyCase c;
  c.regime = "degenerate";
  switch (rng->NextUint64(4)) {
    case 0: {
      // Empty database.
      c.db = TransactionDatabase();
      break;
    }
    case 1: {
      // One transaction.
      TdbBuilder builder;
      builder.AddTransaction(rng->NextInt64(-10, 10), {0, 1, 2});
      c.db = builder.Build();
      break;
    }
    case 2: {
      // Single item, equal gaps — one long periodic run.
      Shape shape;
      shape.num_items = 1;
      shape.num_timestamps = 10 + rng->NextUint64(20);
      shape.item_prob = 1.0;
      shape.plant_burst = false;
      const uint64_t gap = 1 + rng->NextUint64(3);
      TimestampList timeline = TimelineFrom(
          rng->NextInt64(-5, 5),
          std::vector<uint64_t>(shape.num_timestamps - 1, gap));
      c.db = FillTransactions(rng, shape, timeline);
      break;
    }
    default: {
      // Two items alternating on a sparse grid.
      TdbBuilder builder;
      Timestamp ts = rng->NextInt64(-10, 10);
      const size_t n = 8 + rng->NextUint64(16);
      for (size_t i = 0; i < n; ++i) {
        builder.AddTransaction(ts, {static_cast<ItemId>(i % 2)});
        ts += rng->NextInt64(1, 6);
      }
      c.db = builder.Build();
      break;
    }
  }
  c.params = RandomParams(rng, rng->NextInt64(1, 4));
  return c;
}

}  // namespace

VerifyCase MakeVerifyCase(uint64_t seed, uint64_t index) {
  // Decorrelate the per-case stream from (seed, index) with splitmix64 so
  // adjacent indices share no draw structure.
  uint64_t mix = seed ^ (index * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL);
  Rng rng(SplitMix64(&mix));
  // Rotate regimes for even coverage; the remaining shape is random.
  switch (index % 6) {
    case 0: return MakeDense(&rng);
    case 1: return MakeSparse(&rng);
    case 2: return MakePeriodBoundary(&rng);
    case 3: return MakeNegative(&rng);
    case 4: return MakeInt64Extreme(&rng);
    default: return MakeDegenerate(&rng);
  }
}

}  // namespace rpm::verify
