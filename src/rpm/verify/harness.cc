#include "rpm/verify/harness.h"

#include <string>
#include <utility>

#include "rpm/verify/case_generator.h"
#include "rpm/verify/shrinker.h"

namespace rpm::verify {

VerifyReport RunVerification(const VerifyOptions& options) {
  VerifyReport report;
  for (uint64_t index = 0; index < options.cases; ++index) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      report.cancelled = true;
      break;
    }
    VerifyCase c = MakeVerifyCase(options.seed, index);
    if (options.fixed_params.has_value()) c.params = *options.fixed_params;
    ++report.cases_run;
    if (options.cross_check.check_oracle) ++report.oracle_checks;
    if (options.cross_check.check_parallel) ++report.parallel_checks;
    if (options.cross_check.check_streaming &&
        c.params.max_gap_violations == 0) {
      ++report.streaming_checks;
    }
    if (options.cross_check.check_engine) ++report.engine_checks;
    if (options.cross_check.check_windowed &&
        c.params.max_gap_violations == 0) {
      ++report.windowed_checks;
    }

    std::vector<Divergence> divergences =
        CrossCheckCase(c.db, c.params, options.cross_check);
    if (divergences.empty()) continue;

    CaseFailure failure;
    failure.case_index = index;
    failure.regime = c.regime;
    failure.divergences = std::move(divergences);

    // Minimize: keep any database on which the cross-checks still
    // disagree (not necessarily with the original divergence text — any
    // disagreement pins the bug).
    const CrossCheckOptions& cc = options.cross_check;
    ShrinkResult shrunk = ShrinkFailingCase(
        c.db, c.params,
        [&cc](const TransactionDatabase& db, const RpParams& params) {
          return !CrossCheckCase(db, params, cc).empty();
        });
    failure.original_transactions = shrunk.original_transactions;
    failure.shrunk_transactions = shrunk.shrunk_transactions;
    failure.fixture = RenderFixture(shrunk.db, shrunk.params);
    report.failures.push_back(std::move(failure));

    if (report.failures.size() >= options.max_failures) break;
  }
  return report;
}

std::string FormatReport(const VerifyReport& report,
                         const VerifyOptions& options) {
  std::string s;
  s += "verify: " + std::to_string(report.cases_run) + " case(s), seed " +
       std::to_string(options.seed) + "\n";
  s += "checks: oracle " + std::to_string(report.oracle_checks) +
       ", parallel " + std::to_string(report.parallel_checks) +
       ", streaming " + std::to_string(report.streaming_checks) +
       ", engine " + std::to_string(report.engine_checks) +
       ", windowed " + std::to_string(report.windowed_checks) + "\n";
  if (report.cancelled) {
    s += "note: cancelled by signal after " +
         std::to_string(report.cases_run) + "/" +
         std::to_string(options.cases) + " cases\n";
  }
  if (report.ok()) {
    s += "result: OK — all implementations agree on every case\n";
    return s;
  }
  s += "result: " + std::to_string(report.failures.size()) +
       " divergent case(s)";
  if (report.failures.size() >= options.max_failures &&
      report.cases_run < options.cases) {
    s += " (stopped early after " + std::to_string(report.cases_run) + "/" +
         std::to_string(options.cases) + " cases)";
  }
  s += "\n";
  for (const CaseFailure& f : report.failures) {
    s += "\n--- case " + std::to_string(f.case_index) + " (seed " +
         std::to_string(options.seed) + ", regime " + f.regime + ") ---\n";
    for (const Divergence& d : f.divergences) {
      s += "  [" + d.check + "] " + d.detail + "\n";
    }
    s += "  shrunk " + std::to_string(f.original_transactions) + " -> " +
         std::to_string(f.shrunk_transactions) + " transaction(s)\n";
    s += "  minimal fixture (paste into a regression test):\n";
    // Indent the fixture block for readability.
    std::string indented;
    indented.reserve(f.fixture.size() + 64);
    indented += "    ";
    for (char ch : f.fixture) {
      indented += ch;
      if (ch == '\n') indented += "    ";
    }
    // Drop the trailing indent after the final newline.
    if (indented.size() >= 4) indented.resize(indented.size() - 4);
    s += indented;
    s += "  reproduce: MakeVerifyCase(" + std::to_string(options.seed) +
         ", " + std::to_string(f.case_index) + ")\n";
  }
  return s;
}

}  // namespace rpm::verify
