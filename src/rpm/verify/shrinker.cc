#include "rpm/verify/shrinker.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rpm::verify {

namespace {

/// Rebuilds a database from a transaction subsequence. Any subsequence of
/// valid transactions is itself valid (order and item invariants are
/// per-transaction or preserved by omission), so the direct constructor
/// applies.
TransactionDatabase FromTransactions(std::vector<Transaction> txns,
                                     const TransactionDatabase& original) {
  return TransactionDatabase(std::move(txns), original.dictionary());
}

struct ShrinkContext {
  const TransactionDatabase* original;
  const RpParams* params;
  const FailurePredicate* still_fails;
  size_t evaluations = 0;

  bool Fails(std::vector<Transaction> txns) {
    ++evaluations;
    return (*still_fails)(FromTransactions(std::move(txns), *original),
                          *params);
  }
};

/// Classic ddmin over whole transactions: try dropping ever-smaller chunks
/// while the failure persists.
std::vector<Transaction> DdminTransactions(std::vector<Transaction> current,
                                           ShrinkContext* ctx) {
  size_t granularity = 2;
  while (current.size() >= 2) {
    const size_t chunk =
        std::max<size_t>(1, (current.size() + granularity - 1) / granularity);
    bool reduced = false;
    for (size_t start = 0; start < current.size(); start += chunk) {
      std::vector<Transaction> candidate;
      candidate.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(current[i]);
      }
      if (candidate.empty()) continue;
      if (ctx->Fails(candidate)) {
        current = std::move(candidate);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // Already at single-transaction granularity.
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  // Final one-by-one sweep: ddmin with a shrinking base can skip single
  // removals that only become possible late.
  for (size_t i = 0; i < current.size() && current.size() > 1;) {
    std::vector<Transaction> candidate = current;
    candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
    if (ctx->Fails(candidate)) {
      current = std::move(candidate);
      i = 0;  // Earlier removals may have been unblocked.
    } else {
      ++i;
    }
  }
  return current;
}

/// Removes single items (dropping transactions that become empty) until no
/// single-item removal preserves the failure.
std::vector<Transaction> MinimizeItems(std::vector<Transaction> current,
                                       ShrinkContext* ctx) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t t = 0; t < current.size(); ++t) {
      for (size_t k = 0; k < current[t].items.size();) {
        std::vector<Transaction> candidate = current;
        candidate[t].items.erase(candidate[t].items.begin() +
                                 static_cast<ptrdiff_t>(k));
        if (candidate[t].items.empty()) {
          candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(t));
        }
        if (ctx->Fails(candidate)) {
          current = std::move(candidate);
          progressed = true;
          if (t >= current.size()) break;  // Transaction t was dropped.
          // Same k now names the next item; re-test it.
        } else {
          ++k;
        }
      }
    }
  }
  return current;
}

}  // namespace

ShrinkResult ShrinkFailingCase(const TransactionDatabase& db,
                               const RpParams& params,
                               const FailurePredicate& still_fails) {
  ShrinkResult result;
  result.params = params;
  result.original_transactions = db.size();

  ShrinkContext ctx;
  ctx.original = &db;
  ctx.params = &params;
  ctx.still_fails = &still_fails;

  std::vector<Transaction> current = db.transactions();
  if (!ctx.Fails(current)) {
    // Not a failing case — nothing to minimize.
    result.db = FromTransactions(std::move(current), db);
    result.shrunk_transactions = result.original_transactions;
    result.predicate_evaluations = ctx.evaluations;
    return result;
  }

  current = DdminTransactions(std::move(current), &ctx);
  current = MinimizeItems(std::move(current), &ctx);

  result.shrunk_transactions = current.size();
  result.db = FromTransactions(std::move(current), db);
  result.predicate_evaluations = ctx.evaluations;
  return result;
}

std::string RenderFixture(const TransactionDatabase& db,
                          const RpParams& params) {
  std::string s;
  s += "RpParams params;\n";
  s += "params.period = " + std::to_string(params.period) + ";\n";
  s += "params.min_ps = " + std::to_string(params.min_ps) + ";\n";
  s += "params.min_rec = " + std::to_string(params.min_rec) + ";\n";
  if (params.max_gap_violations != 0) {
    s += "params.max_gap_violations = " +
         std::to_string(params.max_gap_violations) + ";\n";
  }
  s += "TransactionDatabase db = MakeDatabase({\n";
  for (const Transaction& tr : db.transactions()) {
    s += "    {" + std::to_string(tr.ts) + ", {";
    for (size_t i = 0; i < tr.items.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(tr.items[i]);
    }
    s += "}},\n";
  }
  s += "});\n";
  return s;
}

}  // namespace rpm::verify
