#include "rpm/verify/fault_injection.h"

#include <sstream>
#include <utility>

#include "rpm/common/failpoint.h"
#include "rpm/engine/session.h"
#include "rpm/engine/snapshot_registry.h"
#include "rpm/serve/client.h"
#include "rpm/serve/server.h"
#include "rpm/serve/service.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/verify/case_generator.h"

namespace rpm {

namespace {

/// SplitMix64 finalizer: the fire decision for hit n of a site is
/// Mix(seed ^ site-hash ^ n) — a pure function of those three, so a trial
/// replays from its seed (modulo worker interleaving on the parallel
/// backend, which only permutes per-site hit indexes).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  // FNV-1a; sites are short literals, quality is plenty for seeding Mix.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return h;
}

bool InjectorTrampoline(const char* site) {
  return FaultInjector::Instance().ShouldFail(site);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(const FaultInjectionOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
    options_ = options;
    sites_.clear();
    hits_ = 0;
    fires_ = 0;
  }
  SetFailpointHandler(&InjectorTrampoline);
}

void FaultInjector::Disarm() {
  SetFailpointHandler(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

bool FaultInjector::ShouldFail(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  // A worker may hit a site between SetFailpointHandler(nullptr) and the
  // armed_ flip; treat that window as disarmed.
  if (!armed_) return false;
  const std::string key(site);
  auto& counts = sites_[key];
  const uint64_t hit_index = counts.first++;
  ++hits_;
  if (!options_.site_filter.empty() && options_.site_filter != key) {
    return false;
  }
  bool fire;
  if (options_.fire_on_nth > 0) {
    fire = hit_index + 1 == options_.fire_on_nth;
  } else {
    const uint64_t roll = Mix(options_.seed ^ HashSite(key) ^ hit_index);
    fire = roll % 1000000ull < options_.probability_ppm;
  }
  if (fire) {
    ++counts.second;
    ++fires_;
  }
  return fire;
}

uint64_t FaultInjector::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

uint64_t FaultInjector::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::map<std::string, std::pair<uint64_t, uint64_t>>
FaultInjector::SiteCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_;
}

// --- Campaign driver -------------------------------------------------------

namespace {

using engine::BackendKind;
using engine::DatasetSnapshot;
using engine::ExecOptions;
using engine::Query;
using engine::QueryResult;
using engine::QuerySession;

struct TrialContext {
  FaultCampaignReport* report;
  size_t trial;
  std::string regime;
};

void AddFailure(const TrialContext& ctx, const std::string& what) {
  std::string msg;
  msg += "trial ";
  msg += std::to_string(ctx.trial);
  msg += " [";
  msg += ctx.regime;
  msg += "]: ";
  msg += what;
  ctx.report->failures.push_back(std::move(msg));
}

/// A governed query for the campaign: the trial's params plus a generous
/// deadline. The deadline is never hit by these tiny cases on a real
/// clock — its only purpose is to make the clock.skip failpoint eligible
/// (deadline probes are skipped entirely on un-timed queries).
Query CampaignQuery(const RpParams& params) {
  Query query;
  query.params = params;
  query.limits.timeout_ms = 60 * 1000;
  return query;
}

/// Runs one armed query and checks the fault contract: a well-formed query
/// NEVER surfaces a Result error or an exception; it either completes with
/// exactly the ground-truth patterns (status OK) or reports a governed
/// failure through QueryResult::status. Returns true when the operation
/// recovered from a fault (non-OK status).
bool CheckArmedQuery(const TrialContext& ctx, QuerySession& session,
                     const Query& query, BackendKind backend,
                     const ExecOptions& exec,
                     const std::vector<RecurringPattern>& truth) {
  Result<QueryResult> run = session.Run(query, backend, exec);
  const char* name = engine::BackendName(backend);
  if (!run.ok()) {
    AddFailure(ctx, std::string(name) + " returned a Result error under " +
                        "faults: " + run.status().ToString());
    return false;
  }
  const QueryResult& result = *run;
  if (result.status.ok()) {
    if (result.truncated) {
      AddFailure(ctx, std::string(name) +
                          " reported truncated=true with an OK status");
    } else if (result.patterns != truth) {
      AddFailure(ctx, std::string(name) +
                          " diverged from ground truth without reporting "
                          "a fault (status OK)");
    }
    return false;
  }
  // Governed failure: the status must be one of the fault-shaped codes,
  // and a truncated result must still be well-formed (no partial garbage
  // — every reported pattern is a real ground-truth pattern).
  if (!result.status.IsResourceExhausted() &&
      !result.status.IsDeadlineExceeded() && !result.status.IsCancelled() &&
      result.status.code() != StatusCode::kUnknown) {
    AddFailure(ctx, std::string(name) + " surfaced an unexpected status "
                                        "under faults: " +
                        result.status.ToString());
    return false;
  }
  for (const RecurringPattern& p : result.patterns) {
    bool found = false;
    for (const RecurringPattern& t : truth) {
      if (p == t) {
        found = true;
        break;
      }
    }
    if (!found) {
      AddFailure(ctx, std::string(name) +
                          " emitted a pattern absent from ground truth in "
                          "a truncated result: " +
                          p.ToString());
      return false;
    }
  }
  return true;
}

/// Disarmed rerun on the SAME session: faults must leave no residue — in
/// particular no partial build in the planner cache (DESIGN.md §7.4).
void CheckDisarmedRerun(const TrialContext& ctx, QuerySession& session,
                        const Query& query, BackendKind backend,
                        const ExecOptions& exec,
                        const std::vector<RecurringPattern>& truth) {
  Result<QueryResult> run = session.Run(query, backend, exec);
  const char* name = engine::BackendName(backend);
  if (!run.ok()) {
    AddFailure(ctx, std::string(name) + " failed on the disarmed rerun: " +
                        run.status().ToString());
    return;
  }
  if (!run->status.ok() || run->patterns != truth) {
    AddFailure(ctx, std::string(name) +
                        " diverged on the disarmed rerun — fault residue "
                        "(poisoned planner cache?)");
  }
}

/// Armed tspmf round-trip through string streams: the write side has no
/// failpoints; the read side may fail via io.read and must do so with a
/// clean non-OK status. Returns true on a recovered fault.
bool CheckArmedRoundTrip(const TrialContext& ctx,
                         const TransactionDatabase& db) {
  std::ostringstream encoded;
  const Status write = WriteTimestampedSpmf(db, &encoded);
  if (!write.ok()) {
    AddFailure(ctx, "tspmf write failed (no failpoints on the write "
                    "path): " +
                        write.ToString());
    return false;
  }
  std::istringstream in(encoded.str());
  Result<TransactionDatabase> read = ReadTimestampedSpmf(&in);
  if (!read.ok()) return true;  // Clean refusal — the contract.
  if (read->size() != db.size()) {
    AddFailure(ctx, "tspmf round-trip silently dropped transactions under "
                    "faults");
  }
  return false;
}

/// The trial's query as a wire request line. "meta": false strips the
/// history-dependent meta object, so the response is byte-deterministic
/// and the armed/disarmed runs can be compared bit-for-bit.
std::string ServeQueryLine(const RpParams& params) {
  std::string line = "{\"op\":\"query\",\"dataset\":\"trial\","
                     "\"tenant\":\"campaign\",\"id\":\"q\",\"per\":";
  line += std::to_string(params.period);
  line += ",\"min_ps\":";
  line += std::to_string(params.min_ps);
  line += ",\"min_rec\":";
  line += std::to_string(params.min_rec);
  line += ",\"tolerance\":";
  line += std::to_string(params.max_gap_violations);
  line += ",\"meta\":false}";
  return line;
}

/// True when an armed response line is an acceptable structured failure:
/// it must look like a response object carrying a "status" field (the
/// server never writes partial junk — a fault either closes the
/// connection or the full structured line goes out).
bool IsStructuredResponse(const std::string& line) {
  return !line.empty() && line.front() == '{' && line.back() == '}' &&
         line.find("\"status\":\"") != std::string::npos;
}

/// One serve-side fault trial: an in-process server hosting the trial's
/// snapshot, a disarmed ground-truth response, several armed request
/// attempts over fresh connections (each may be cut by serve.accept /
/// serve.read / serve.write / serve.session.alloc or fail in-engine), and
/// a disarmed rerun that must be BIT-IDENTICAL to ground truth. The
/// server must stay alive throughout and drain cleanly at the end —
/// a hang here fails the trial via read timeouts.
void CheckServeTrial(const TrialContext& ctx,
                     const std::shared_ptr<const DatasetSnapshot>& snapshot,
                     const RpParams& params,
                     const FaultCampaignOptions& options, size_t trial,
                     FaultCampaignReport* report) {
  engine::SnapshotRegistry registry;
  if (Status s = registry.Register("trial", snapshot); !s.ok()) {
    AddFailure(ctx, "serve: snapshot registration failed: " + s.ToString());
    return;
  }
  serve::QueryService service(&registry, serve::TenantRegistry(), {});
  serve::Server::Options server_options;
  server_options.drain_deadline_ms = 2000;
  serve::Server server(&service, server_options);
  if (Status s = server.Start(); !s.ok()) {
    AddFailure(ctx, "serve: server start failed: " + s.ToString());
    return;
  }

  const std::string request = ServeQueryLine(params);
  std::string ground_truth;
  {
    Result<serve::LineClient> client = serve::LineClient::Connect(server.port());
    if (!client.ok()) {
      AddFailure(ctx, "serve: disarmed connect failed: " +
                          client.status().ToString());
      return;
    }
    Result<std::string> response = client->Call(request, /*timeout_ms=*/10000);
    if (!response.ok()) {
      AddFailure(ctx, "serve: disarmed ground-truth query failed: " +
                          response.status().ToString());
      return;
    }
    ground_truth = *response;
  }

  {
    FaultInjectionOptions inject;
    // Distinct stream from the engine-side armed scope of the same trial.
    inject.seed = Mix(options.seed ^ (trial * 0x9e3779b97f4a7c15ull) ^ 1);
    inject.probability_ppm = options.probability_ppm;
    ScopedFaultInjection armed(inject);

    for (int attempt = 0; attempt < 3; ++attempt) {
      ++report->faulted_operations;
      Result<serve::LineClient> client =
          serve::LineClient::Connect(server.port());
      if (!client.ok()) {
        // accept-side fault: connection refused/reset before use.
        ++report->clean_recoveries;
        continue;
      }
      if (!client->SendLine(request).ok()) {
        ++report->clean_recoveries;  // Connection cut by a serve fault.
        continue;
      }
      Result<std::string> response = client->ReadLine(/*timeout_ms=*/10000);
      if (!response.ok()) {
        if (response.status().IsDeadlineExceeded()) {
          AddFailure(ctx, "serve: armed request hung (no response, no "
                          "close, within 10s)");
          return;
        }
        ++report->clean_recoveries;  // EOF: fault closed the connection.
        continue;
      }
      if (*response == ground_truth) continue;  // Clean completion.
      if (IsStructuredResponse(*response)) {
        ++report->clean_recoveries;  // Structured in-band failure.
        continue;
      }
      AddFailure(ctx, "serve: armed response is neither ground truth nor "
                      "a structured failure: " +
                          *response);
      return;
    }
    report->faults_injected += FaultInjector::Instance().fires();
  }

  // Disarmed rerun: bit-identical bytes, and the server still serves.
  Result<serve::LineClient> client = serve::LineClient::Connect(server.port());
  if (!client.ok()) {
    AddFailure(ctx, "serve: disarmed-rerun connect failed — server died "
                    "under transport faults: " +
                        client.status().ToString());
    return;
  }
  Result<std::string> rerun = client->Call(request, /*timeout_ms=*/10000);
  if (!rerun.ok()) {
    AddFailure(ctx, "serve: disarmed rerun failed: " +
                        rerun.status().ToString());
    return;
  }
  if (*rerun != ground_truth) {
    AddFailure(ctx, "serve: disarmed rerun diverged from ground truth — "
                    "fault residue in the server");
    return;
  }
  server.Drain();
}

}  // namespace

std::string FaultCampaignReport::ToString() const {
  std::string s;
  s += "fault campaign: ";
  s += std::to_string(trials_run);
  s += " trials, ";
  s += std::to_string(faults_injected);
  s += " faults injected across ";
  s += std::to_string(faulted_operations);
  s += " operations, ";
  s += std::to_string(clean_recoveries);
  s += " clean recoveries, ";
  s += std::to_string(failures.size());
  s += " contract violations";
  if (cancelled) s += " (cancelled early)";
  s += ok() ? " [PASS]" : " [FAIL]";
  for (const std::string& f : failures) {
    s += "\n  FAIL: ";
    s += f;
  }
  return s;
}

FaultCampaignReport RunFaultCampaign(const FaultCampaignOptions& options) {
  FaultCampaignReport report;
  FaultInjector& injector = FaultInjector::Instance();
  const ExecOptions parallel_exec{options.parallel_threads};

  for (size_t trial = 0; trial < options.trials; ++trial) {
    if (report.failures.size() >= options.max_failures) break;
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      report.cancelled = true;
      break;
    }
    verify::VerifyCase vcase = verify::MakeVerifyCase(options.seed, trial);
    TrialContext ctx{&report, trial, vcase.regime};
    ++report.trials_run;

    // Ground truth, disarmed and un-governed.
    auto snapshot = DatasetSnapshot::Create(std::move(vcase.db));
    QuerySession session(snapshot);
    Query plain;
    plain.params = vcase.params;
    Result<QueryResult> truth_run = session.Run(plain);
    if (!truth_run.ok()) {
      AddFailure(ctx, "ground-truth query failed while disarmed: " +
                          truth_run.status().ToString());
      continue;
    }
    const std::vector<RecurringPattern> truth =
        std::move(truth_run.ValueOrDie().patterns);

    const bool streaming_ok = vcase.params.max_gap_violations == 0;
    const Query governed = CampaignQuery(vcase.params);
    size_t recoveries = 0;
    {
      FaultInjectionOptions inject;
      inject.seed = Mix(options.seed ^ (trial * 2654435761ull));
      inject.probability_ppm = options.probability_ppm;
      ScopedFaultInjection armed(inject);

      recoveries += CheckArmedRoundTrip(ctx, snapshot->db()) ? 1 : 0;
      ++report.faulted_operations;
      recoveries += CheckArmedQuery(ctx, session, governed,
                                    BackendKind::kSequential, {}, truth)
                        ? 1
                        : 0;
      ++report.faulted_operations;
      recoveries += CheckArmedQuery(ctx, session, governed,
                                    BackendKind::kParallel, parallel_exec,
                                    truth)
                        ? 1
                        : 0;
      ++report.faulted_operations;
      if (streaming_ok) {
        recoveries += CheckArmedQuery(ctx, session, governed,
                                      BackendKind::kStreaming, {}, truth)
                          ? 1
                          : 0;
        ++report.faulted_operations;
      }
      // Counters were reset by this scope's Arm, so this is the trial's
      // own fire count.
      report.faults_injected += injector.fires();
    }
    report.clean_recoveries += recoveries;

    // Residue check on the same session, injector disarmed.
    CheckDisarmedRerun(ctx, session, plain, BackendKind::kSequential, {},
                       truth);
    CheckDisarmedRerun(ctx, session, plain, BackendKind::kParallel,
                       parallel_exec, truth);

    // Transport robustness: the same query through an in-process server
    // with the serve.* failpoints armed.
    if (options.serve_trials) {
      CheckServeTrial(ctx, snapshot, vcase.params, options, trial, &report);
    }
  }
  return report;
}

}  // namespace rpm
