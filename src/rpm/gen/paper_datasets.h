// Canonical instantiations of the paper's three evaluation databases
// (Sec. 5.1), with an optional scale factor so tests can use miniature
// versions of the same distributions.
//
// The Twitter-like stream plants the four Table 6 events — {yyc,
// uttarakhand}, {nuclear, hibaku}, {pakvotes, nayapakistan} and {oklahoma,
// tornado, prayforoklahoma} — at the minute offsets corresponding to the
// dates the paper reports (epoch: 2013-05-01 00:00), with the "rare"
// hashtags (#uttarakhand, #hibaku, ...) assigned deep background-popularity
// ranks so that the rare-item behaviour of Sec. 5.2 is exercised.

#ifndef RPM_GEN_PAPER_DATASETS_H_
#define RPM_GEN_PAPER_DATASETS_H_

#include <cstdint>

#include "rpm/gen/clickstream_generator.h"
#include "rpm/gen/hashtag_generator.h"
#include "rpm/gen/quest_generator.h"

namespace rpm::gen {

/// Minutes since 1970 of 2013-05-01 00:00 — the Twitter stream's epoch.
int64_t TwitterEpochMinutes();

/// T10I4D100K: 100k transactions, 1000-item universe, avg length 10.
/// `scale` in (0, 1] shrinks the transaction count.
TransactionDatabase MakeT10I4D100K(double scale = 1.0, uint64_t seed = 42);

/// Shop-14-like: 59,240 minutes, 138 categories, planted seasonal groups.
GeneratedClickstream MakeShop14(double scale = 1.0, uint64_t seed = 7);

/// Twitter-like: 177,120 minutes, 1000 hashtags, Table 6 events planted
/// (window offsets scale with `scale`).
GeneratedHashtagStream MakeTwitter(double scale = 1.0, uint64_t seed = 13);

}  // namespace rpm::gen

#endif  // RPM_GEN_PAPER_DATASETS_H_
