#include "rpm/gen/quest_generator.h"

#include <algorithm>
#include <cmath>

#include "rpm/common/logging.h"
#include "rpm/common/random.h"
#include "rpm/common/zipf.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm::gen {

namespace {

/// One potentially-large itemset with its selection weight and the
/// corruption level applied when it is planted into a transaction.
struct PotentialItemset {
  Itemset items;
  double weight = 0.0;
  double corruption = 0.0;
};

std::vector<PotentialItemset> BuildPotentialItemsets(
    const QuestParams& params, Rng* rng) {
  std::vector<PotentialItemset> sets(params.num_patterns);
  // Item picks are weighted so some items are intrinsically popular; the
  // original uses an exponential item-popularity skew.
  std::vector<double> item_weights(params.num_items);
  for (double& w : item_weights) w = rng->NextExponential(1.0);
  DiscreteSampler item_sampler(item_weights);

  for (size_t s = 0; s < sets.size(); ++s) {
    PotentialItemset& set = sets[s];
    // Size: Poisson with the requested mean, at least 1.
    size_t size = std::max<uint32_t>(
        1, rng->NextPoisson(params.avg_pattern_size));
    size = std::min(size, params.num_items);

    // Share a prefix with the previous itemset: the shared fraction is
    // exponentially distributed with mean `correlation`.
    Itemset items;
    if (s > 0) {
      double frac =
          std::min(1.0, rng->NextExponential(1.0 / params.correlation));
      size_t reuse = std::min(
          {static_cast<size_t>(std::lround(frac * size)), size,
           sets[s - 1].items.size()});
      if (reuse > 0) {
        std::vector<size_t> picks = rng->SampleWithoutReplacement(
            sets[s - 1].items.size(), reuse);
        for (size_t p : picks) items.push_back(sets[s - 1].items[p]);
      }
    }
    while (items.size() < size) {
      items.push_back(static_cast<ItemId>(item_sampler.Sample(rng)));
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
    }
    set.items = std::move(items);
    set.weight = rng->NextExponential(1.0);
    set.corruption = std::clamp(
        rng->NextGaussian(params.corruption_mean, params.corruption_sd), 0.0,
        1.0);
  }
  return sets;
}

}  // namespace

TransactionDatabase GenerateQuest(const QuestParams& params) {
  RPM_CHECK(params.num_transactions > 0);
  RPM_CHECK(params.num_items > 1);
  RPM_CHECK(params.num_patterns > 0);
  Rng rng(params.seed);

  std::vector<PotentialItemset> sets = BuildPotentialItemsets(params, &rng);
  std::vector<double> weights(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) weights[i] = sets[i].weight;
  DiscreteSampler set_sampler(weights);

  TdbBuilder builder;
  Itemset carry;  // Itemset deferred to the next transaction (half the
                  // oversize cases, per the original procedure).
  for (size_t t = 0; t < params.num_transactions; ++t) {
    const Timestamp ts = static_cast<Timestamp>(t + 1);
    size_t target = std::max<uint32_t>(
        1, rng.NextPoisson(params.avg_transaction_size));
    Itemset txn;
    if (!carry.empty()) {
      txn = std::move(carry);
      carry.clear();
    }
    size_t guard = 0;
    while (txn.size() < target && ++guard < 64) {
      const PotentialItemset& set = sets[set_sampler.Sample(&rng)];
      // Corrupt: repeatedly drop an item while a uniform draw stays below
      // the set's corruption level.
      Itemset planted = set.items;
      while (!planted.empty() && rng.NextDouble() < set.corruption) {
        size_t victim = static_cast<size_t>(rng.NextUint64(planted.size()));
        planted.erase(planted.begin() + static_cast<ptrdiff_t>(victim));
      }
      if (planted.empty()) continue;
      if (txn.size() + planted.size() > target && !txn.empty()) {
        // Doesn't fit: keep it anyway half the time, else defer it.
        if (rng.NextBernoulli(0.5)) {
          txn.insert(txn.end(), planted.begin(), planted.end());
        } else {
          carry = std::move(planted);
        }
        break;
      }
      txn.insert(txn.end(), planted.begin(), planted.end());
    }
    if (txn.empty()) {
      txn.push_back(static_cast<ItemId>(rng.NextUint64(params.num_items)));
    }
    builder.AddTransaction(ts, txn);
  }
  return builder.Build();
}

}  // namespace rpm::gen
