// Twitter-like hashtag stream simulator.
//
// The paper's Twitter database is the top-1000 English hashtags of 44M
// tweets over 123 days (1-May-2013 .. 31-Aug-2013), one transaction per
// minute: 177,120 transactions, 1000 items. The crawl is not available, so
// this module synthesises a stream of the same shape: Zipf background
// traffic (hashtag id == popularity rank), a diurnal cycle, and *planted
// burst events* — groups of 2-4 hashtags co-occurring for a bounded span of
// days, some involving hashtags that are otherwise rare (the paper's
// #uttarakhand / #hibaku examples). Events are returned as ground truth.

#ifndef RPM_GEN_HASHTAG_GENERATOR_H_
#define RPM_GEN_HASHTAG_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rpm/timeseries/transaction_database.h"

namespace rpm::gen {

/// Half-open burst window [begin, end) in minutes since stream start.
using BurstWindow = std::pair<Timestamp, Timestamp>;

/// A burst event specified by the caller (tag indices == popularity
/// ranks).
struct BurstEventSpec {
  std::string label;
  std::vector<size_t> tag_indices;
  std::vector<BurstWindow> windows;
  /// Per-minute firing probability inside a window. NOT scaled by the
  /// diurnal curve — bursts are event-driven and run through the night.
  double fire_prob = 0.5;
};

/// A planted event resolved to ItemIds (== tag indices).
struct ResolvedBurstEvent {
  std::string label;
  Itemset tags;
  std::vector<BurstWindow> windows;
};

struct HashtagParams {
  size_t num_minutes = 177120;  ///< 123 days.
  size_t num_hashtags = 1000;
  double zipf_exponent = 1.05;
  double background_rate = 18.0;  ///< Mean distinct hashtags per peak minute.
  double night_factor = 0.35;
  /// Real hashtag usage fluctuates: every tag independently goes silent on
  /// some days. Inactive-day probability for tag at rank r is
  ///   daily_dropout_base + daily_dropout_slope * r / num_hashtags.
  /// This is what keeps complete-cycle (periodic-frequent) patterns rare
  /// on hashtag data, as the paper's Table 8 reports. Set both to 0 for a
  /// perfectly steady background.
  double daily_dropout_base = 0.005;
  double daily_dropout_slope = 0.30;
  size_t num_random_events = 36;  ///< Generated on top of planted specs.
  size_t min_event_tags = 2;
  size_t max_event_tags = 4;
  size_t min_event_windows = 1;
  size_t max_event_windows = 2;
  Timestamp min_event_minutes = 2 * 1440;
  Timestamp max_event_minutes = 15 * 1440;
  double event_fire_prob = 0.5;
  uint64_t seed = 13;
};

struct GeneratedHashtagStream {
  TransactionDatabase db;
  /// Planted specs first (same order), then the random events.
  std::vector<ResolvedBurstEvent> events;
};

/// Deterministic in params.seed. Hashtag `i` is named "tag0000"-style
/// unless `name_overrides` maps index i to a custom name (used by
/// paper_datasets to plant the Table 6 hashtags). Minutes with no tweets
/// produce no transaction.
GeneratedHashtagStream GenerateHashtagStream(
    const HashtagParams& params,
    const std::vector<BurstEventSpec>& planted = {},
    const std::map<size_t, std::string>& name_overrides = {});

/// Diurnal multiplier (0, 1] for minute `ts`; trough at 04:00 UTC-ish.
double HashtagActivity(const HashtagParams& params, Timestamp ts);

}  // namespace rpm::gen

#endif  // RPM_GEN_HASHTAG_GENERATOR_H_
