#include "rpm/gen/clickstream_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rpm/common/logging.h"
#include "rpm/common/random.h"
#include "rpm/common/zipf.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm::gen {

double ClickstreamActivity(const ClickstreamParams& params, Timestamp ts) {
  const double minute_of_day = static_cast<double>(ts % 1440);
  // Cosine with trough at 04:00 (minute 240) and peak 12h later.
  const double phase =
      2.0 * std::numbers::pi * (minute_of_day - 240.0) / 1440.0;
  const double diurnal = 0.5 * (1.0 - std::cos(phase));
  double factor =
      params.night_factor + (1.0 - params.night_factor) * diurnal;
  const int day_of_week = static_cast<int>((ts / 1440) % 7);
  if (day_of_week >= 5) factor *= params.weekend_factor;
  return factor;
}

namespace {

std::vector<SeasonalGroup> PlantGroups(const ClickstreamParams& params,
                                       Rng* rng) {
  std::vector<SeasonalGroup> groups(params.num_seasonal_groups);
  for (SeasonalGroup& g : groups) {
    const size_t size = params.min_group_size +
                        rng->NextUint64(params.max_group_size -
                                        params.min_group_size + 1);
    // Draw categories from the mid-to-rare half so the groups are not
    // drowned out by (nor confused with) the most popular categories.
    const size_t lo = params.num_categories / 3;
    std::vector<size_t> picks = rng->SampleWithoutReplacement(
        params.num_categories - lo, size);
    for (size_t p : picks) g.categories.push_back(static_cast<ItemId>(p + lo));
    std::sort(g.categories.begin(), g.categories.end());

    const size_t windows =
        params.min_windows +
        rng->NextUint64(params.max_windows - params.min_windows + 1);
    for (size_t w = 0; w < windows; ++w) {
      const Timestamp len =
          params.min_window_minutes +
          static_cast<Timestamp>(rng->NextUint64(static_cast<uint64_t>(
              params.max_window_minutes - params.min_window_minutes + 1)));
      const Timestamp latest_start =
          std::max<Timestamp>(1, static_cast<Timestamp>(params.num_minutes) -
                                     len);
      const Timestamp begin = static_cast<Timestamp>(
          rng->NextUint64(static_cast<uint64_t>(latest_start)));
      g.windows.emplace_back(begin, begin + len);
    }
    std::sort(g.windows.begin(), g.windows.end());
    g.fire_prob = params.group_fire_prob;
  }
  return groups;
}

bool InAnyWindow(const std::vector<TimeWindow>& windows, Timestamp ts) {
  for (const TimeWindow& w : windows) {
    if (ts >= w.first && ts < w.second) return true;
  }
  return false;
}

}  // namespace

GeneratedClickstream GenerateClickstream(const ClickstreamParams& params) {
  RPM_CHECK(params.num_minutes > 0);
  RPM_CHECK(params.num_categories > params.max_group_size);
  Rng rng(params.seed);
  ZipfSampler zipf(params.num_categories, params.zipf_exponent);

  GeneratedClickstream result;
  result.ground_truth = PlantGroups(params, &rng);

  ItemDictionary dict;
  for (size_t c = 0; c < params.num_categories; ++c) {
    char name[32];
    std::snprintf(name, sizeof(name), "cat%03zu", c);
    dict.GetOrAdd(name);
  }

  TdbBuilder builder;
  Itemset txn;
  for (size_t minute = 0; minute < params.num_minutes; ++minute) {
    const Timestamp ts = static_cast<Timestamp>(minute);
    const double activity = ClickstreamActivity(params, ts);
    txn.clear();
    const uint32_t visits = rng.NextPoisson(params.base_rate * activity);
    for (uint32_t v = 0; v < visits; ++v) {
      txn.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
    }
    for (const SeasonalGroup& g : result.ground_truth) {
      if (InAnyWindow(g.windows, ts) &&
          rng.NextBernoulli(g.fire_prob * activity)) {
        txn.insert(txn.end(), g.categories.begin(), g.categories.end());
      }
    }
    if (!txn.empty()) builder.AddTransaction(ts, txn);
  }
  result.db = builder.Build(std::move(dict));
  return result;
}

}  // namespace rpm::gen
