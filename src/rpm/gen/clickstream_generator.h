// Shop-14-like clickstream simulator.
//
// The paper's Shop-14 database (ECML/PKDD'05 Discovery Challenge) is 41
// days of per-minute page-category visits: 59,240 transactions over 138
// categories. The challenge data is not redistributable, so this module
// synthesises a stream with the same shape: Zipf-popular categories, a
// diurnal + weekly activity cycle, and *seasonal category groups* that are
// co-visited only during bounded windows — the structure recurring-pattern
// mining is designed to expose. The planted groups are returned as ground
// truth so tests can assert they are recovered.

#ifndef RPM_GEN_CLICKSTREAM_GENERATOR_H_
#define RPM_GEN_CLICKSTREAM_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rpm/timeseries/transaction_database.h"

namespace rpm::gen {

/// Half-open activity window [begin, end) in minutes since stream start.
using TimeWindow = std::pair<Timestamp, Timestamp>;

/// A planted seasonal co-visit group and when it was active.
struct SeasonalGroup {
  Itemset categories;
  std::vector<TimeWindow> windows;
  double fire_prob = 0.0;
};

struct ClickstreamParams {
  size_t num_minutes = 59240;   ///< 41 days + change, per the paper.
  size_t num_categories = 138;
  double zipf_exponent = 1.1;   ///< Background popularity skew.
  double base_rate = 6.0;       ///< Mean categories visited per peak minute.
  double night_factor = 0.25;   ///< Activity multiplier at the trough.
  double weekend_factor = 0.7;  ///< Multiplier on Saturdays/Sundays.
  size_t num_seasonal_groups = 12;
  size_t min_group_size = 2;
  size_t max_group_size = 4;
  size_t min_windows = 1;       ///< Activity windows per group.
  size_t max_windows = 3;
  Timestamp min_window_minutes = 4 * 1440;
  Timestamp max_window_minutes = 10 * 1440;
  double group_fire_prob = 0.35;  ///< Per-minute, scaled by diurnal curve.
  uint64_t seed = 7;
};

struct GeneratedClickstream {
  TransactionDatabase db;
  std::vector<SeasonalGroup> ground_truth;
};

/// Deterministic in params.seed. Category names are "cat000".."catNNN";
/// minutes with no visits produce no transaction (cf. Table 1's missing
/// timestamps).
GeneratedClickstream GenerateClickstream(const ClickstreamParams& params);

/// The activity multiplier (0, 1] used for minute `ts`: diurnal cosine
/// trough at 04:00, peak at 16:00, damped on weekends. Exposed for tests.
double ClickstreamActivity(const ClickstreamParams& params, Timestamp ts);

}  // namespace rpm::gen

#endif  // RPM_GEN_CLICKSTREAM_GENERATOR_H_
