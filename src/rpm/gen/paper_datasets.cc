#include "rpm/gen/paper_datasets.h"

#include <algorithm>
#include <cmath>

#include "rpm/common/civil_time.h"
#include "rpm/common/logging.h"

namespace rpm::gen {

int64_t TwitterEpochMinutes() {
  return MinutesFromCivil({2013, 5, 1, 0, 0});
}

namespace {

/// Minute offset of a 2013 date/time from the Twitter epoch.
Timestamp At(uint32_t month, uint32_t day, uint32_t hour, uint32_t minute) {
  return MinutesFromCivil({2013, month, day, hour, minute}) -
         TwitterEpochMinutes();
}

Timestamp Scale(Timestamp ts, double scale) {
  return static_cast<Timestamp>(std::llround(ts * scale));
}

// Fixed popularity ranks for the named Table 6 hashtags. Low rank = popular
// background tag; high rank = rare (near-silent outside its burst).
constexpr size_t kYyc = 120;
constexpr size_t kUttarakhand = 950;
constexpr size_t kNuclear = 80;
constexpr size_t kHibaku = 940;
constexpr size_t kPakvotes = 400;
constexpr size_t kNayapakistan = 870;
constexpr size_t kOklahoma = 150;
constexpr size_t kTornado = 300;
constexpr size_t kPrayForOklahoma = 880;

std::vector<BurstEventSpec> PaperEvents(double scale) {
  std::vector<BurstEventSpec> events;
  {
    BurstEventSpec e;
    e.label = "uttarakhand-alberta-floods";
    e.tag_indices = {kYyc, kUttarakhand};
    e.windows = {{Scale(At(6, 21, 1, 8), scale),
                  Scale(At(7, 1, 4, 27), scale)}};
    e.fire_prob = 0.55;
    events.push_back(std::move(e));
  }
  {
    BurstEventSpec e;
    e.label = "nuclear-hibaku";
    e.tag_indices = {kNuclear, kHibaku};
    e.windows = {{Scale(At(5, 6, 22, 33), scale),
                  Scale(At(5, 24, 22, 13), scale)},
                 {Scale(At(7, 1, 6, 17), scale),
                  Scale(At(7, 14, 6, 21), scale)}};
    e.fire_prob = 0.5;
    events.push_back(std::move(e));
  }
  {
    BurstEventSpec e;
    e.label = "pakistan-elections";
    e.tag_indices = {kPakvotes, kNayapakistan};
    e.windows = {{Scale(At(5, 9, 16, 15), scale),
                  Scale(At(5, 15, 14, 11), scale)}};
    e.fire_prob = 0.6;
    events.push_back(std::move(e));
  }
  {
    BurstEventSpec e;
    e.label = "oklahoma-tornado";
    e.tag_indices = {kOklahoma, kTornado, kPrayForOklahoma};
    e.windows = {{Scale(At(5, 21, 11, 52), scale),
                  Scale(At(5, 24, 21, 38), scale)}};
    // A short (3.4-day) but viral burst: it must appear in >72% of its
    // window's minutes to clear minPS = 2% of |TDB| (Table 6 row 4).
    e.fire_prob = 0.85;
    events.push_back(std::move(e));
  }
  return events;
}

std::map<size_t, std::string> PaperTagNames() {
  return {{kYyc, "yyc"},
          {kUttarakhand, "uttarakhand"},
          {kNuclear, "nuclear"},
          {kHibaku, "hibaku"},
          {kPakvotes, "pakvotes"},
          {kNayapakistan, "nayapakistan"},
          {kOklahoma, "oklahoma"},
          {kTornado, "tornado"},
          {kPrayForOklahoma, "prayforoklahoma"}};
}

}  // namespace

TransactionDatabase MakeT10I4D100K(double scale, uint64_t seed) {
  RPM_CHECK(scale > 0.0 && scale <= 1.0);
  QuestParams params;
  params.seed = seed;
  params.num_transactions = std::max<size_t>(
      100, static_cast<size_t>(std::llround(100000 * scale)));
  return GenerateQuest(params);
}

GeneratedClickstream MakeShop14(double scale, uint64_t seed) {
  RPM_CHECK(scale > 0.0 && scale <= 1.0);
  ClickstreamParams params;
  params.seed = seed;
  params.num_minutes = std::max<size_t>(
      1440, static_cast<size_t>(std::llround(59240 * scale)));
  if (scale < 1.0) {
    // Keep several windows inside the shortened stream.
    params.min_window_minutes =
        std::max<Timestamp>(120, Scale(params.min_window_minutes, scale));
    params.max_window_minutes =
        std::max<Timestamp>(240, Scale(params.max_window_minutes, scale));
  }
  return GenerateClickstream(params);
}

GeneratedHashtagStream MakeTwitter(double scale, uint64_t seed) {
  RPM_CHECK(scale > 0.0 && scale <= 1.0);
  HashtagParams params;
  params.seed = seed;
  params.num_minutes = std::max<size_t>(
      1440, static_cast<size_t>(std::llround(177120 * scale)));
  if (scale < 1.0) {
    params.min_event_minutes =
        std::max<Timestamp>(120, Scale(params.min_event_minutes, scale));
    params.max_event_minutes =
        std::max<Timestamp>(240, Scale(params.max_event_minutes, scale));
  }
  return GenerateHashtagStream(params, PaperEvents(scale), PaperTagNames());
}

}  // namespace rpm::gen
