#include "rpm/gen/hashtag_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rpm/common/logging.h"
#include "rpm/common/random.h"
#include "rpm/common/zipf.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm::gen {

double HashtagActivity(const HashtagParams& params, Timestamp ts) {
  const double minute_of_day = static_cast<double>(ts % 1440);
  const double phase =
      2.0 * std::numbers::pi * (minute_of_day - 240.0) / 1440.0;
  const double diurnal = 0.5 * (1.0 - std::cos(phase));
  return params.night_factor + (1.0 - params.night_factor) * diurnal;
}

namespace {

ResolvedBurstEvent Resolve(const BurstEventSpec& spec) {
  ResolvedBurstEvent event;
  event.label = spec.label;
  for (size_t idx : spec.tag_indices) {
    event.tags.push_back(static_cast<ItemId>(idx));
  }
  std::sort(event.tags.begin(), event.tags.end());
  event.windows = spec.windows;
  std::sort(event.windows.begin(), event.windows.end());
  return event;
}

std::vector<BurstEventSpec> MakeRandomEvents(const HashtagParams& params,
                                             Rng* rng) {
  std::vector<BurstEventSpec> specs(params.num_random_events);
  size_t counter = 0;
  for (BurstEventSpec& spec : specs) {
    spec.label = "random-event-" + std::to_string(counter++);
    const size_t tags =
        params.min_event_tags +
        rng->NextUint64(params.max_event_tags - params.min_event_tags + 1);
    // Bias toward the rarer two thirds of the tag universe so bursts are
    // visible against the background (and exercise the rare-item case).
    const size_t lo = params.num_hashtags / 3;
    std::vector<size_t> picks =
        rng->SampleWithoutReplacement(params.num_hashtags - lo, tags);
    for (size_t p : picks) spec.tag_indices.push_back(p + lo);

    const size_t windows = params.min_event_windows +
                           rng->NextUint64(params.max_event_windows -
                                           params.min_event_windows + 1);
    for (size_t w = 0; w < windows; ++w) {
      const Timestamp len =
          params.min_event_minutes +
          static_cast<Timestamp>(rng->NextUint64(static_cast<uint64_t>(
              params.max_event_minutes - params.min_event_minutes + 1)));
      const Timestamp latest_start = std::max<Timestamp>(
          1, static_cast<Timestamp>(params.num_minutes) - len);
      const Timestamp begin = static_cast<Timestamp>(
          rng->NextUint64(static_cast<uint64_t>(latest_start)));
      spec.windows.emplace_back(begin, begin + len);
    }
    spec.fire_prob = params.event_fire_prob;
  }
  return specs;
}

bool InAnyWindow(const std::vector<BurstWindow>& windows, Timestamp ts) {
  for (const BurstWindow& w : windows) {
    if (ts >= w.first && ts < w.second) return true;
  }
  return false;
}

}  // namespace

GeneratedHashtagStream GenerateHashtagStream(
    const HashtagParams& params, const std::vector<BurstEventSpec>& planted,
    const std::map<size_t, std::string>& name_overrides) {
  RPM_CHECK(params.num_minutes > 0);
  RPM_CHECK(params.num_hashtags > params.max_event_tags);
  Rng rng(params.seed);
  ZipfSampler zipf(params.num_hashtags, params.zipf_exponent);

  GeneratedHashtagStream result;
  for (const BurstEventSpec& spec : planted) {
    for (size_t idx : spec.tag_indices) RPM_CHECK(idx < params.num_hashtags);
    result.events.push_back(Resolve(spec));
  }
  for (const BurstEventSpec& spec : MakeRandomEvents(params, &rng)) {
    result.events.push_back(Resolve(spec));
  }

  ItemDictionary dict;
  for (size_t i = 0; i < params.num_hashtags; ++i) {
    auto it = name_overrides.find(i);
    if (it != name_overrides.end()) {
      dict.GetOrAdd(it->second);
    } else {
      char name[32];
      std::snprintf(name, sizeof(name), "tag%04zu", i);
      dict.GetOrAdd(name);
    }
  }

  // Collect per-event fire probabilities aligned with result.events.
  std::vector<double> fire_probs;
  for (const BurstEventSpec& spec : planted) {
    fire_probs.push_back(spec.fire_prob);
  }
  fire_probs.resize(result.events.size(), params.event_fire_prob);

  // Per-tag daily activity: rank-dependent dropout makes the background
  // irregular the way real hashtag streams are (tags skip days).
  const size_t num_days = params.num_minutes / 1440 + 1;
  std::vector<std::vector<bool>> tag_active_on_day(params.num_hashtags);
  for (size_t tag = 0; tag < params.num_hashtags; ++tag) {
    const double dropout =
        params.daily_dropout_base +
        params.daily_dropout_slope * static_cast<double>(tag) /
            static_cast<double>(params.num_hashtags);
    tag_active_on_day[tag].resize(num_days);
    for (size_t day = 0; day < num_days; ++day) {
      tag_active_on_day[tag][day] = !rng.NextBernoulli(dropout);
    }
  }

  TdbBuilder builder;
  Itemset txn;
  for (size_t minute = 0; minute < params.num_minutes; ++minute) {
    const Timestamp ts = static_cast<Timestamp>(minute);
    const size_t day = minute / 1440;
    const double activity = HashtagActivity(params, ts);
    txn.clear();
    const uint32_t tweets = rng.NextPoisson(params.background_rate * activity);
    for (uint32_t v = 0; v < tweets; ++v) {
      const size_t tag = zipf.Sample(&rng);
      if (tag_active_on_day[tag][day]) {
        txn.push_back(static_cast<ItemId>(tag));
      }
    }
    for (size_t e = 0; e < result.events.size(); ++e) {
      const ResolvedBurstEvent& event = result.events[e];
      // Burst firing is intentionally NOT damped by the diurnal curve:
      // event-driven tweet storms continue through the night, which is
      // what lets short bursts clear high minPS bars (paper Table 6).
      if (InAnyWindow(event.windows, ts) &&
          rng.NextBernoulli(fire_probs[e])) {
        txn.insert(txn.end(), event.tags.begin(), event.tags.end());
      }
    }
    if (!txn.empty()) builder.AddTransaction(ts, txn);
  }
  result.db = builder.Build(std::move(dict));
  return result;
}

}  // namespace rpm::gen
