// IBM Quest-style synthetic transaction generator (Agrawal & Srikant,
// "Fast Algorithms for Mining Association Rules", VLDB'94 Sec. 4.1) —
// the procedure the paper cites ([23]) for its T10I4D100K database.
//
// The classic TxIyDz naming: T = average transaction size, I = average
// size of the potentially-large itemsets, D = number of transactions.
// T10I4D100K therefore is {avg_transaction_size=10, avg_pattern_size=4,
// num_transactions=100'000}.

#ifndef RPM_GEN_QUEST_GENERATOR_H_
#define RPM_GEN_QUEST_GENERATOR_H_

#include <cstdint>

#include "rpm/timeseries/transaction_database.h"

namespace rpm::gen {

struct QuestParams {
  size_t num_transactions = 100000;  ///< D
  double avg_transaction_size = 10;  ///< T
  double avg_pattern_size = 4;       ///< I
  size_t num_items = 1000;           ///< N (941 of which typically occur)
  size_t num_patterns = 2000;        ///< L: potentially-large itemsets
  /// Mean of the exponential governing how much of each potential itemset
  /// is shared with its predecessor.
  double correlation = 0.5;
  /// Mean / stddev of each itemset's (clamped normal) corruption level.
  double corruption_mean = 0.5;
  double corruption_sd = 0.1;
  uint64_t seed = 42;
};

/// Generates the database; transaction k gets timestamp k+1 (the paper
/// treats T10I4D100K as a unit-spaced sequence; per = 360 etc. are plain
/// transaction-index differences). Deterministic in `seed`.
TransactionDatabase GenerateQuest(const QuestParams& params);

}  // namespace rpm::gen

#endif  // RPM_GEN_QUEST_GENERATOR_H_
