#include "rpm/timeseries/database_stats.h"

#include <algorithm>

#include "rpm/common/string_util.h"

namespace rpm {

DatabaseStats ComputeStats(const TransactionDatabase& db) {
  DatabaseStats stats;
  stats.num_transactions = db.size();
  stats.item_supports.assign(db.ItemUniverseSize(), 0);
  for (const Transaction& tr : db.transactions()) {
    stats.total_item_occurrences += tr.items.size();
    stats.max_transaction_length =
        std::max(stats.max_transaction_length, tr.items.size());
    for (ItemId item : tr.items) ++stats.item_supports[item];
  }
  for (size_t s : stats.item_supports) {
    if (s > 0) ++stats.num_distinct_items;
  }
  if (!db.empty()) {
    stats.start_ts = db.start_ts();
    stats.end_ts = db.end_ts();
    stats.avg_transaction_length =
        static_cast<double>(stats.total_item_occurrences) /
        static_cast<double>(stats.num_transactions);
  }
  return stats;
}

std::string DatabaseStats::ToString() const {
  std::string out;
  out += FormatWithThousands(static_cast<int64_t>(num_transactions));
  out += " transactions, ";
  out += FormatWithThousands(num_distinct_items);
  out += " distinct items, avg length ";
  out += FormatDouble(avg_transaction_length, 2);
  out += ", span [" + std::to_string(start_ts) + ", " +
         std::to_string(end_ts) + "]";
  return out;
}

}  // namespace rpm
