// Temporally-ordered transactional database (Sec. 3, Table 1).
//
// The database preserves the point sequence of every item in the original
// time series: TS^X computed here equals the point sequence of X in the TSD
// (the paper's losslessness argument after Definition 2).

#ifndef RPM_TIMESERIES_TRANSACTION_DATABASE_H_
#define RPM_TIMESERIES_TRANSACTION_DATABASE_H_

#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/item_dictionary.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// A set of transactions ordered by strictly increasing timestamp.
///
/// Invariants (checked by Validate(), maintained by TdbBuilder):
///  - transactions sorted by ts, timestamps unique;
///  - within a transaction, items sorted ascending and duplicate-free.
class TransactionDatabase {
 public:
  TransactionDatabase() = default;

  /// Takes ownership of transactions; the caller must already satisfy the
  /// invariants (use TdbBuilder otherwise). Verified in debug builds.
  explicit TransactionDatabase(std::vector<Transaction> transactions,
                               ItemDictionary dictionary = {});

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  const Transaction& transaction(size_t idx) const {
    return transactions_[idx];
  }

  /// |TDB|: number of transactions.
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  /// Largest item id present plus one; 0 when empty.
  uint32_t ItemUniverseSize() const { return item_universe_; }

  /// Timestamp of the first / last transaction. Precondition: !empty().
  Timestamp start_ts() const { return transactions_.front().ts; }
  Timestamp end_ts() const { return transactions_.back().ts; }

  /// Total number of item occurrences (sum of transaction lengths).
  size_t TotalItemOccurrences() const;

  /// TS^X: ordered timestamps of transactions containing every item of
  /// `pattern` (Definition 2 / Example 2). O(|TDB| * |pattern|) scan;
  /// miners use their own indexed structures — this is the definitional
  /// reference used by tests, the brute-force miner and report verification.
  TimestampList TimestampsOf(const Itemset& pattern) const;

  /// Sup(X) = |TS^X| (Definition 3).
  size_t SupportOf(const Itemset& pattern) const {
    return TimestampsOf(pattern).size();
  }

  const ItemDictionary& dictionary() const { return dictionary_; }
  ItemDictionary* mutable_dictionary() { return &dictionary_; }

  /// Full invariant check (ordering, uniqueness, item sortedness).
  Status Validate() const;

 private:
  std::vector<Transaction> transactions_;
  ItemDictionary dictionary_;
  uint32_t item_universe_ = 0;
};

/// True iff `pattern` (sorted) is a subset of `items` (sorted).
bool ContainsAll(const Itemset& items, const Itemset& pattern);

}  // namespace rpm

#endif  // RPM_TIMESERIES_TRANSACTION_DATABASE_H_
