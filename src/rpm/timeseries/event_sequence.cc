#include "rpm/timeseries/event_sequence.h"

#include <algorithm>

namespace rpm {

EventSequence::EventSequence(std::vector<Event> events)
    : events_(std::move(events)) {
  Normalize();
}

void EventSequence::Normalize() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.item < b.item;
                   });
}

TimestampList EventSequence::PointSequenceOf(ItemId item) const {
  TimestampList out;
  for (const Event& e : events_) {
    if (e.item != item) continue;
    if (out.empty() || out.back() != e.ts) out.push_back(e.ts);
  }
  return out;
}

uint32_t EventSequence::ItemUniverseSize() const {
  uint32_t max_id = 0;
  bool any = false;
  for (const Event& e : events_) {
    any = true;
    max_id = std::max(max_id, e.item);
  }
  return any ? max_id + 1 : 0;
}

Status EventSequence::Validate() const {
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i - 1].ts > events_[i].ts) {
      return Status::Corruption(
          "events out of order at index " + std::to_string(i) + ": " +
          std::to_string(events_[i - 1].ts) + " > " +
          std::to_string(events_[i].ts));
    }
  }
  for (const Event& e : events_) {
    if (e.item == kInvalidItem) {
      return Status::Corruption("event with invalid item id");
    }
  }
  return Status::OK();
}

}  // namespace rpm
