#include "rpm/timeseries/item_dictionary.h"

namespace rpm {

ItemId ItemDictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<ItemId> ItemDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown item '" + std::string(name) + "'");
  }
  return it->second;
}

std::string ItemDictionary::NameOf(ItemId id) const {
  if (id < names_.size()) return names_[id];
  return "item" + std::to_string(id);
}

std::vector<std::string> ItemDictionary::NamesOf(const Itemset& items) const {
  std::vector<std::string> out;
  out.reserve(items.size());
  for (ItemId id : items) out.push_back(NameOf(id));
  return out;
}

}  // namespace rpm
