#include "rpm/timeseries/io/spmf_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "rpm/common/failpoint.h"
#include "rpm/common/string_util.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm {

namespace {

bool IsCommentOrBlank(std::string_view line) {
  std::string_view t = Trim(line);
  return t.empty() || t.front() == '#' || t.front() == '%' ||
         t.front() == '@';
}

/// "line N (byte B)": every reader diagnostic carries the 1-based line AND
/// the 0-based byte offset, so a failure in a multi-gigabyte file is
/// addressable with `head -c` / `dd` as well as an editor.
std::string At(size_t line_no, uint64_t byte_offset) {
  std::string tag;
  tag += "line ";
  tag += std::to_string(line_no);
  tag += " (byte ";
  tag += std::to_string(byte_offset);
  tag += ")";
  return tag;
}

std::string Quoted(std::string_view tok) {
  std::string q;
  q += '\'';
  q.append(tok.data(), tok.size());
  q += '\'';
  return q;
}

/// `text` must be a substring view into `line`; token byte offsets are
/// derived from their position within it.
Status ParseItems(std::string_view text, std::string_view line,
                  uint64_t line_offset, const SpmfParseOptions& options,
                  ItemDictionary* dict, Itemset* out, size_t line_no) {
  out->clear();
  for (std::string_view tok : SplitWhitespace(text)) {
    const uint64_t tok_offset =
        line_offset + static_cast<uint64_t>(tok.data() - line.data());
    if (options.items_are_ids) {
      Result<uint32_t> id = ParseUint32(tok);
      if (!id.ok()) {
        return Status::Corruption(At(line_no, tok_offset) + ": bad item "
                                  "token " + Quoted(tok) + ": " +
                                  id.status().message());
      }
      if (*id == kInvalidItem) {
        return Status::Corruption(
            At(line_no, tok_offset) + ": item id " + std::to_string(*id) +
            " is the reserved invalid-item sentinel");
      }
      out->push_back(*id);
    } else {
      out->push_back(dict->GetOrAdd(tok));
    }
  }
  if (out->empty()) {
    return Status::Corruption(At(line_no, line_offset) +
                              ": transaction with no items");
  }
  // Enforce the Transaction invariant (sorted ascending, duplicate-free)
  // here rather than relying on a downstream builder to clean up.
  std::sort(out->begin(), out->end());
  auto dup = std::unique(out->begin(), out->end());
  if (dup != out->end()) {
    if (options.strict) {
      return Status::Corruption(At(line_no, line_offset) +
                                ": duplicate item in transaction");
    }
    out->erase(dup, out->end());
  }
  return Status::OK();
}

}  // namespace

Result<TransactionDatabase> ReadSpmf(std::istream* in,
                                     const SpmfParseOptions& options) {
  TdbBuilder builder;
  ItemDictionary dict;
  std::string line;
  size_t line_no = 0;
  uint64_t byte_offset = 0;
  Timestamp ts = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const uint64_t line_offset = byte_offset;
    byte_offset += line.size() + 1;  // getline consumed the '\n' too.
    if (FailpointTriggered("io.read")) {
      return Status::IOError("injected read fault at " +
                             At(line_no, line_offset));
    }
    if (options.allow_comments && IsCommentOrBlank(line)) continue;
    Itemset items;
    RPM_RETURN_NOT_OK(ParseItems(line, line, line_offset, options, &dict,
                                 &items, line_no));
    builder.AddTransaction(++ts, items);
  }
  if (in->bad()) {
    return Status::IOError("stream error while reading SPMF at " +
                           At(line_no, byte_offset));
  }
  return builder.Build(std::move(dict));
}

Result<TransactionDatabase> ReadTimestampedSpmf(
    std::istream* in, const SpmfParseOptions& options) {
  TdbBuilder builder;
  ItemDictionary dict;
  std::string line;
  size_t line_no = 0;
  uint64_t byte_offset = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const uint64_t line_offset = byte_offset;
    byte_offset += line.size() + 1;
    if (FailpointTriggered("io.read")) {
      return Status::IOError("injected read fault at " +
                             At(line_no, line_offset));
    }
    if (options.allow_comments && IsCommentOrBlank(line)) continue;
    size_t bar = line.find('|');
    if (bar == std::string::npos) {
      return Status::Corruption(At(line_no, line_offset) +
                                ": missing '|' timestamp separator");
    }
    const std::string_view ts_text =
        Trim(std::string_view(line).substr(0, bar));
    Result<int64_t> ts = ParseInt64(ts_text);
    if (!ts.ok()) {
      return Status::Corruption(At(line_no, line_offset) +
                                ": bad timestamp token " + Quoted(ts_text) +
                                ": " + ts.status().message());
    }
    Itemset items;
    RPM_RETURN_NOT_OK(ParseItems(std::string_view(line).substr(bar + 1),
                                 line, line_offset, options, &dict, &items,
                                 line_no));
    builder.AddTransaction(*ts, items);
  }
  if (in->bad()) {
    return Status::IOError("stream error while reading SPMF at " +
                           At(line_no, byte_offset));
  }
  return builder.Build(std::move(dict));
}

Result<TransactionDatabase> ReadSpmfFile(const std::string& path,
                                         const SpmfParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadSpmf(&in, options);
}

Result<TransactionDatabase> ReadTimestampedSpmfFile(
    const std::string& path, const SpmfParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadTimestampedSpmf(&in, options);
}

Status WriteTimestampedSpmf(const TransactionDatabase& db,
                            std::ostream* out) {
  const bool named = !db.dictionary().empty();
  for (const Transaction& tr : db.transactions()) {
    *out << tr.ts << '|';
    for (size_t i = 0; i < tr.items.size(); ++i) {
      if (i > 0) *out << ' ';
      if (named) {
        *out << db.dictionary().NameOf(tr.items[i]);
      } else {
        *out << tr.items[i];
      }
    }
    *out << '\n';
  }
  if (!*out) return Status::IOError("stream error while writing SPMF");
  return Status::OK();
}

Status WriteTimestampedSpmfFile(const TransactionDatabase& db,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  return WriteTimestampedSpmf(db, &out);
}

}  // namespace rpm
