#include "rpm/timeseries/io/spmf_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "rpm/common/string_util.h"
#include "rpm/timeseries/tdb_builder.h"

namespace rpm {

namespace {

bool IsCommentOrBlank(std::string_view line) {
  std::string_view t = Trim(line);
  return t.empty() || t.front() == '#' || t.front() == '%' ||
         t.front() == '@';
}

Status ParseItems(std::string_view text, const SpmfParseOptions& options,
                  ItemDictionary* dict, Itemset* out, size_t line_no) {
  out->clear();
  for (std::string_view tok : SplitWhitespace(text)) {
    if (options.items_are_ids) {
      Result<uint32_t> id = ParseUint32(tok);
      if (!id.ok()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": " + id.status().message());
      }
      if (*id == kInvalidItem) {
        return Status::Corruption(
            "line " + std::to_string(line_no) + ": item id " +
            std::to_string(*id) + " is the reserved invalid-item sentinel");
      }
      out->push_back(*id);
    } else {
      out->push_back(dict->GetOrAdd(tok));
    }
  }
  if (out->empty()) {
    return Status::Corruption("line " + std::to_string(line_no) +
                              ": transaction with no items");
  }
  // Enforce the Transaction invariant (sorted ascending, duplicate-free)
  // here rather than relying on a downstream builder to clean up.
  std::sort(out->begin(), out->end());
  auto dup = std::unique(out->begin(), out->end());
  if (dup != out->end()) {
    if (options.strict) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": duplicate item in transaction");
    }
    out->erase(dup, out->end());
  }
  return Status::OK();
}

}  // namespace

Result<TransactionDatabase> ReadSpmf(std::istream* in,
                                     const SpmfParseOptions& options) {
  TdbBuilder builder;
  ItemDictionary dict;
  std::string line;
  size_t line_no = 0;
  Timestamp ts = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (options.allow_comments && IsCommentOrBlank(line)) continue;
    Itemset items;
    RPM_RETURN_NOT_OK(ParseItems(line, options, &dict, &items, line_no));
    builder.AddTransaction(++ts, items);
  }
  if (in->bad()) return Status::IOError("stream error while reading SPMF");
  return builder.Build(std::move(dict));
}

Result<TransactionDatabase> ReadTimestampedSpmf(
    std::istream* in, const SpmfParseOptions& options) {
  TdbBuilder builder;
  ItemDictionary dict;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (options.allow_comments && IsCommentOrBlank(line)) continue;
    size_t bar = line.find('|');
    if (bar == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": missing '|' timestamp separator");
    }
    Result<int64_t> ts = ParseInt64(Trim(std::string_view(line).substr(0, bar)));
    if (!ts.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                ts.status().message());
    }
    Itemset items;
    RPM_RETURN_NOT_OK(ParseItems(std::string_view(line).substr(bar + 1),
                                 options, &dict, &items, line_no));
    builder.AddTransaction(*ts, items);
  }
  if (in->bad()) return Status::IOError("stream error while reading SPMF");
  return builder.Build(std::move(dict));
}

Result<TransactionDatabase> ReadSpmfFile(const std::string& path,
                                         const SpmfParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadSpmf(&in, options);
}

Result<TransactionDatabase> ReadTimestampedSpmfFile(
    const std::string& path, const SpmfParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadTimestampedSpmf(&in, options);
}

Status WriteTimestampedSpmf(const TransactionDatabase& db,
                            std::ostream* out) {
  const bool named = !db.dictionary().empty();
  for (const Transaction& tr : db.transactions()) {
    *out << tr.ts << '|';
    for (size_t i = 0; i < tr.items.size(); ++i) {
      if (i > 0) *out << ' ';
      if (named) {
        *out << db.dictionary().NameOf(tr.items[i]);
      } else {
        *out << tr.items[i];
      }
    }
    *out << '\n';
  }
  if (!*out) return Status::IOError("stream error while writing SPMF");
  return Status::OK();
}

Status WriteTimestampedSpmfFile(const TransactionDatabase& db,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  return WriteTimestampedSpmf(db, &out);
}

}  // namespace rpm
