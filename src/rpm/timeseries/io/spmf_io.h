// SPMF-compatible transaction-database text format.
//
// Plain format (one transaction per line, whitespace-separated items;
// the timestamp is the 1-based line number):
//     a b g
//     a c d
//
// Timestamped format (explicit timestamp, '|' separator) — this is the
// "time-based sequence" the paper mines; lines may skip timestamps
// (cf. Table 1, where ts 8 and 13 have no transaction):
//     1|a b g
//     2|a c d
//     4|a b c d
//
// Item tokens are interned by name unless ParseOptions.items_are_ids, in
// which case each token must parse as a uint32 used verbatim as the ItemId.

#ifndef RPM_TIMESERIES_IO_SPMF_IO_H_
#define RPM_TIMESERIES_IO_SPMF_IO_H_

#include <iosfwd>
#include <string>

#include "rpm/common/status.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

struct SpmfParseOptions {
  /// Treat item tokens as numeric ids instead of interning names.
  bool items_are_ids = false;
  /// Skip lines that are empty or start with '#' or '%' or '@' (SPMF
  /// metadata conventions).
  bool allow_comments = true;
  /// Reject a line whose token list repeats an item instead of silently
  /// deduplicating it. Use for inputs that are supposed to already be
  /// valid transactions (duplicate tokens then indicate corruption).
  bool strict = false;
};

/// Readers enforce the Transaction invariant at the boundary: each line's
/// items come out sorted ascending and duplicate-free (Corruption under
/// `strict` when tokens repeat), and in items_are_ids mode the reserved
/// kInvalidItem id (4294967295) is rejected — accepting it verbatim would
/// wrap every dense per-item array downstream. CRLF line endings and
/// trailing whitespace are tolerated in all modes.

/// Reads the plain format; timestamps are 1-based line numbers (counting
/// only transaction lines).
Result<TransactionDatabase> ReadSpmf(std::istream* in,
                                     const SpmfParseOptions& options = {});
Result<TransactionDatabase> ReadSpmfFile(
    const std::string& path, const SpmfParseOptions& options = {});

/// Reads the timestamped "<ts>|<items>" format.
Result<TransactionDatabase> ReadTimestampedSpmf(
    std::istream* in, const SpmfParseOptions& options = {});
Result<TransactionDatabase> ReadTimestampedSpmfFile(
    const std::string& path, const SpmfParseOptions& options = {});

/// Writes the timestamped format. Items are written as names when the
/// database has a dictionary, else as numeric ids.
Status WriteTimestampedSpmf(const TransactionDatabase& db,
                            std::ostream* out);
Status WriteTimestampedSpmfFile(const TransactionDatabase& db,
                                const std::string& path);

}  // namespace rpm

#endif  // RPM_TIMESERIES_IO_SPMF_IO_H_
