// Long-format CSV event I/O: one event per row, `timestamp,item`.
//
// This is the natural export format of logging pipelines (web logs, tweet
// streams, sensor events); ReadEventCsv + BuildTdbFromSequence is the
// end-to-end "time series in, transactional database out" path of Sec. 3.

#ifndef RPM_TIMESERIES_IO_TIMESTAMPED_CSV_IO_H_
#define RPM_TIMESERIES_IO_TIMESTAMPED_CSV_IO_H_

#include <iosfwd>
#include <string>

#include "rpm/common/status.h"
#include "rpm/timeseries/event_sequence.h"
#include "rpm/timeseries/item_dictionary.h"

namespace rpm {

struct EventCsvOptions {
  /// Skip the first row (column headers).
  bool has_header = true;
  /// Reject a row that repeats an earlier (timestamp, item) event instead
  /// of silently deduplicating it. Exact duplicates carry no information
  /// (the TDB conversion collapses them); under strict they indicate a
  /// corrupt export.
  bool strict = false;
};

/// Parsed events plus the dictionary that interned the item names.
/// The sequence comes back normalized (sorted by timestamp then item) and
/// free of exact-duplicate events; CRLF endings and whitespace around
/// fields are tolerated.
struct EventCsvData {
  EventSequence sequence;
  ItemDictionary dictionary;
};

Result<EventCsvData> ReadEventCsv(std::istream* in,
                                  const EventCsvOptions& options = {});
Result<EventCsvData> ReadEventCsvFile(const std::string& path,
                                      const EventCsvOptions& options = {});

/// Writes `timestamp,item` rows (with a header) for the whole sequence.
Status WriteEventCsv(const EventSequence& sequence,
                     const ItemDictionary& dictionary, std::ostream* out);

}  // namespace rpm

#endif  // RPM_TIMESERIES_IO_TIMESTAMPED_CSV_IO_H_
