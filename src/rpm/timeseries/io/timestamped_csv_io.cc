#include "rpm/timeseries/io/timestamped_csv_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "rpm/common/csv.h"
#include "rpm/common/failpoint.h"
#include "rpm/common/string_util.h"

namespace rpm {

namespace {

/// "line N (byte B)" — matches the SPMF readers' diagnostic convention:
/// line for editors, byte offset for `head -c`-style slicing.
std::string At(const CsvReader& reader) {
  std::string tag;
  tag += "line ";
  tag += std::to_string(reader.line_number());
  tag += " (byte ";
  tag += std::to_string(reader.record_byte_offset());
  tag += ")";
  return tag;
}

}  // namespace

Result<EventCsvData> ReadEventCsv(std::istream* in,
                                  const EventCsvOptions& options) {
  CsvReader reader(in);
  EventCsvData data;
  std::vector<Event> events;
  bool skip_header = options.has_header;
  for (;;) {
    CsvRow row;
    bool done = false;
    RPM_RETURN_NOT_OK(reader.Next(&row, &done));
    if (done) break;
    if (FailpointTriggered("io.read")) {
      return Status::IOError("injected read fault at " + At(reader));
    }
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (row.size() == 1 && Trim(row[0]).empty()) continue;
    if (row.size() < 2) {
      return Status::Corruption(At(reader) + ": expected 'timestamp,item'");
    }
    const std::string_view ts_text = Trim(row[0]);
    Result<int64_t> ts = ParseInt64(ts_text);
    if (!ts.ok()) {
      std::string msg = At(reader);
      msg += ": bad timestamp token '";
      msg.append(ts_text.data(), ts_text.size());
      msg += "': ";
      msg += ts.status().message();
      return Status::Corruption(std::move(msg));
    }
    std::string_view name = Trim(row[1]);
    if (name.empty()) {
      return Status::Corruption(At(reader) + ": empty item name");
    }
    events.push_back({data.dictionary.GetOrAdd(name), *ts});
  }
  // Enforce the boundary invariant: normalized order, no exact-duplicate
  // events.
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.item < b.item;
            });
  auto dup = std::adjacent_find(events.begin(), events.end());
  if (dup != events.end()) {
    if (options.strict) {
      return Status::Corruption(
          "duplicate event (ts " + std::to_string(dup->ts) + ", item '" +
          data.dictionary.NameOf(dup->item) + "')");
    }
    events.erase(std::unique(events.begin(), events.end()), events.end());
  }
  data.sequence = EventSequence(std::move(events));
  return data;
}

Result<EventCsvData> ReadEventCsvFile(const std::string& path,
                                      const EventCsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadEventCsv(&in, options);
}

Status WriteEventCsv(const EventSequence& sequence,
                     const ItemDictionary& dictionary, std::ostream* out) {
  CsvWriter writer(out);
  writer.WriteRow({"timestamp", "item"});
  for (const Event& e : sequence.events()) {
    writer.WriteRow({std::to_string(e.ts), dictionary.NameOf(e.item)});
  }
  if (!*out) return Status::IOError("stream error while writing CSV");
  return Status::OK();
}

}  // namespace rpm
