#include "rpm/timeseries/io/timestamped_csv_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "rpm/common/csv.h"
#include "rpm/common/string_util.h"

namespace rpm {

Result<EventCsvData> ReadEventCsv(std::istream* in,
                                  const EventCsvOptions& options) {
  CsvReader reader(in);
  EventCsvData data;
  std::vector<Event> events;
  bool skip_header = options.has_header;
  for (;;) {
    CsvRow row;
    bool done = false;
    RPM_RETURN_NOT_OK(reader.Next(&row, &done));
    if (done) break;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (row.size() == 1 && Trim(row[0]).empty()) continue;
    if (row.size() < 2) {
      return Status::Corruption("line " +
                                std::to_string(reader.line_number()) +
                                ": expected 'timestamp,item'");
    }
    Result<int64_t> ts = ParseInt64(Trim(row[0]));
    if (!ts.ok()) {
      return Status::Corruption("line " +
                                std::to_string(reader.line_number()) + ": " +
                                ts.status().message());
    }
    std::string_view name = Trim(row[1]);
    if (name.empty()) {
      return Status::Corruption("line " +
                                std::to_string(reader.line_number()) +
                                ": empty item name");
    }
    events.push_back({data.dictionary.GetOrAdd(name), *ts});
  }
  // Enforce the boundary invariant: normalized order, no exact-duplicate
  // events.
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.item < b.item;
            });
  auto dup = std::adjacent_find(events.begin(), events.end());
  if (dup != events.end()) {
    if (options.strict) {
      return Status::Corruption(
          "duplicate event (ts " + std::to_string(dup->ts) + ", item '" +
          data.dictionary.NameOf(dup->item) + "')");
    }
    events.erase(std::unique(events.begin(), events.end()), events.end());
  }
  data.sequence = EventSequence(std::move(events));
  return data;
}

Result<EventCsvData> ReadEventCsvFile(const std::string& path,
                                      const EventCsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadEventCsv(&in, options);
}

Status WriteEventCsv(const EventSequence& sequence,
                     const ItemDictionary& dictionary, std::ostream* out) {
  CsvWriter writer(out);
  writer.WriteRow({"timestamp", "item"});
  for (const Event& e : sequence.events()) {
    writer.WriteRow({std::to_string(e.ts), dictionary.NameOf(e.item)});
  }
  if (!*out) return Status::IOError("stream error while writing CSV");
  return Status::OK();
}

}  // namespace rpm
