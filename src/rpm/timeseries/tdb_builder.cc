#include "rpm/timeseries/tdb_builder.h"

#include <algorithm>

namespace rpm {

void TdbBuilder::AddEvent(ItemId item, Timestamp ts) {
  grouped_[ts].push_back(item);
}

void TdbBuilder::AddTransaction(Timestamp ts, const Itemset& items) {
  Itemset& slot = grouped_[ts];
  slot.insert(slot.end(), items.begin(), items.end());
}

void TdbBuilder::AddSequence(const EventSequence& sequence) {
  for (const Event& e : sequence.events()) AddEvent(e.item, e.ts);
}

TransactionDatabase TdbBuilder::Build(ItemDictionary dictionary) {
  std::vector<Transaction> transactions;
  transactions.reserve(grouped_.size());
  for (auto& [ts, items] : grouped_) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (items.empty()) continue;  // A timestamp with no events: no row.
    transactions.push_back({ts, std::move(items)});
  }
  grouped_.clear();
  return TransactionDatabase(std::move(transactions), std::move(dictionary));
}

TransactionDatabase BuildTdbFromSequence(const EventSequence& sequence,
                                         ItemDictionary dictionary) {
  TdbBuilder builder;
  builder.AddSequence(sequence);
  return builder.Build(std::move(dictionary));
}

TransactionDatabase MakeDatabase(
    std::vector<std::pair<Timestamp, Itemset>> rows,
    ItemDictionary dictionary) {
  TdbBuilder builder;
  for (auto& [ts, items] : rows) builder.AddTransaction(ts, items);
  return builder.Build(std::move(dictionary));
}

}  // namespace rpm
