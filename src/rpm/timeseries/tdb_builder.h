// TSD -> TDB conversion and incremental database construction
// (the "linked hash table" grouping step the paper describes at the end of
// Sec. 3, made explicit: group events by timestamp, order by timestamp).

#ifndef RPM_TIMESERIES_TDB_BUILDER_H_
#define RPM_TIMESERIES_TDB_BUILDER_H_

#include <map>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/event_sequence.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

/// Builds a valid TransactionDatabase from unordered input.
///
/// Accepts events and whole transactions in any order, merges items landing
/// on the same timestamp, deduplicates items, drops nothing else — exactly
/// the information-preserving conversion of Example 2 (timestamps with no
/// events simply produce no transaction).
class TdbBuilder {
 public:
  TdbBuilder() = default;

  /// Adds a single event (i, ts).
  void AddEvent(ItemId item, Timestamp ts);

  /// Adds every item of `items` at timestamp `ts`.
  void AddTransaction(Timestamp ts, const Itemset& items);

  /// Adds a whole event sequence.
  void AddSequence(const EventSequence& sequence);

  /// Number of distinct timestamps accumulated so far.
  size_t PendingTransactions() const { return grouped_.size(); }

  /// Produces the database and resets the builder. `dictionary` (optional)
  /// is attached to the result.
  TransactionDatabase Build(ItemDictionary dictionary = {});

 private:
  std::map<Timestamp, Itemset> grouped_;
};

/// One-shot conversion (Definition 1-2 path): time series in, TDB out.
TransactionDatabase BuildTdbFromSequence(const EventSequence& sequence,
                                         ItemDictionary dictionary = {});

/// Convenience for tests and examples: builds a database from
/// (ts, items) literals, e.g. the paper's Table 1 running example.
TransactionDatabase MakeDatabase(
    std::vector<std::pair<Timestamp, Itemset>> rows,
    ItemDictionary dictionary = {});

}  // namespace rpm

#endif  // RPM_TIMESERIES_TDB_BUILDER_H_
