// Event sequences and point sequences (Definitions 1-2).
//
// An EventSequence is the raw time-series view of the data: a collection of
// (item, timestamp) events ordered by timestamp. The mining algorithms do
// not operate on it directly; TdbBuilder converts it losslessly into a
// temporally-ordered TransactionDatabase (Sec. 3, Example 2).

#ifndef RPM_TIMESERIES_EVENT_SEQUENCE_H_
#define RPM_TIMESERIES_EVENT_SEQUENCE_H_

#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// An ordered collection of events {(i1,ts1), ..., (iN,tsN)}, tsh <= tsj
/// for h <= j. Duplicate (item, ts) pairs are allowed on input and are
/// collapsed by the TDB conversion.
class EventSequence {
 public:
  EventSequence() = default;

  /// Takes events in any order; they are sorted by (ts, item).
  explicit EventSequence(std::vector<Event> events);

  /// Appends one event. Call Normalize() after bulk appends.
  void Add(ItemId item, Timestamp ts) { events_.push_back({item, ts}); }

  /// Sorts by (ts, item). Idempotent.
  void Normalize();

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// The implied point sequence of one item: ordered, duplicate-free
  /// timestamps at which `item` occurs (Definition 2, Example 1).
  /// Precondition: Normalize() has been called (constructors do).
  TimestampList PointSequenceOf(ItemId item) const;

  /// Largest item id present plus one; 0 when empty.
  uint32_t ItemUniverseSize() const;

  /// OK iff events are sorted by timestamp (the Definition 1 invariant).
  Status Validate() const;

 private:
  std::vector<Event> events_;
};

}  // namespace rpm

#endif  // RPM_TIMESERIES_EVENT_SEQUENCE_H_
