// Fundamental value types of the time-series / transactional data model
// (Sec. 3 of the paper, Definitions 1-2).

#ifndef RPM_TIMESERIES_TYPES_H_
#define RPM_TIMESERIES_TYPES_H_

#include <cstdint>
#include <vector>

namespace rpm {

/// Dense identifier of an item (event type). Names live in ItemDictionary.
using ItemId = uint32_t;

/// Occurrence time of an event. Unit-agnostic (the paper uses minutes for
/// Shop-14/Twitter and transaction indices for T10I4D100K).
using Timestamp = int64_t;

/// A pattern X ⊆ I: items sorted ascending, no duplicates.
using Itemset = std::vector<ItemId>;

/// A point sequence: the ordered timestamps at which something occurred
/// (TS^X in the paper's notation).
using TimestampList = std::vector<Timestamp>;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = static_cast<ItemId>(-1);

/// An event (i, ts): item i observed at timestamp ts (Definition 1).
struct Event {
  ItemId item = kInvalidItem;
  Timestamp ts = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// A transaction tr = (ts, Y): the set of items observed at one timestamp.
/// `items` is sorted ascending and duplicate-free.
struct Transaction {
  Timestamp ts = 0;
  Itemset items;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

}  // namespace rpm

#endif  // RPM_TIMESERIES_TYPES_H_
