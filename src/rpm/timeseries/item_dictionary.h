// Bidirectional mapping between item names and dense ItemIds.

#ifndef RPM_TIMESERIES_ITEM_DICTIONARY_H_
#define RPM_TIMESERIES_ITEM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Interns item names as contiguous ids 0..size()-1.
///
/// Mining operates on ids; the dictionary is consulted only at the
/// input/report boundaries. Copyable; ids are stable once assigned.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the existing id for `name`, or assigns the next free one.
  ItemId GetOrAdd(std::string_view name);

  /// Returns the id of `name`, or NotFound.
  Result<ItemId> Lookup(std::string_view name) const;

  /// Returns the name of `id`; ids never handed out map to "item<id>".
  std::string NameOf(ItemId id) const;

  /// Translates a whole itemset to names (report formatting).
  std::vector<std::string> NamesOf(const Itemset& items) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> ids_;
};

}  // namespace rpm

#endif  // RPM_TIMESERIES_ITEM_DICTIONARY_H_
