// Summary statistics of a transactional database (used by benches to report
// dataset shape next to every table, and by generator sanity tests).

#ifndef RPM_TIMESERIES_DATABASE_STATS_H_
#define RPM_TIMESERIES_DATABASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/timeseries/transaction_database.h"

namespace rpm {

/// Aggregate shape of a database.
struct DatabaseStats {
  size_t num_transactions = 0;
  uint32_t num_distinct_items = 0;
  size_t total_item_occurrences = 0;
  double avg_transaction_length = 0.0;
  size_t max_transaction_length = 0;
  Timestamp start_ts = 0;
  Timestamp end_ts = 0;
  /// Per-item supports, indexed by ItemId (0 for absent ids).
  std::vector<size_t> item_supports;

  /// One-line human-readable summary.
  std::string ToString() const;
};

DatabaseStats ComputeStats(const TransactionDatabase& db);

}  // namespace rpm

#endif  // RPM_TIMESERIES_DATABASE_STATS_H_
