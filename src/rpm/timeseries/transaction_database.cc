#include "rpm/timeseries/transaction_database.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm {

bool ContainsAll(const Itemset& items, const Itemset& pattern) {
  return std::includes(items.begin(), items.end(), pattern.begin(),
                       pattern.end());
}

TransactionDatabase::TransactionDatabase(
    std::vector<Transaction> transactions, ItemDictionary dictionary)
    : transactions_(std::move(transactions)),
      dictionary_(std::move(dictionary)) {
  for (const Transaction& tr : transactions_) {
    for (ItemId item : tr.items) {
      item_universe_ = std::max(item_universe_, item + 1);
    }
  }
  RPM_DCHECK(Validate().ok());
}

size_t TransactionDatabase::TotalItemOccurrences() const {
  size_t total = 0;
  for (const Transaction& tr : transactions_) total += tr.items.size();
  return total;
}

TimestampList TransactionDatabase::TimestampsOf(
    const Itemset& pattern) const {
  Itemset sorted = pattern;  // Accept unsorted queries at the API boundary.
  std::sort(sorted.begin(), sorted.end());
  TimestampList out;
  for (const Transaction& tr : transactions_) {
    if (ContainsAll(tr.items, sorted)) out.push_back(tr.ts);
  }
  return out;
}

Status TransactionDatabase::Validate() const {
  for (size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& tr = transactions_[i];
    if (i > 0 && transactions_[i - 1].ts >= tr.ts) {
      return Status::Corruption(
          "transactions not strictly ordered by timestamp at index " +
          std::to_string(i));
    }
    if (tr.items.empty()) {
      return Status::Corruption("empty transaction at ts " +
                                std::to_string(tr.ts));
    }
    for (size_t j = 1; j < tr.items.size(); ++j) {
      if (tr.items[j - 1] >= tr.items[j]) {
        return Status::Corruption("items not sorted/unique at ts " +
                                  std::to_string(tr.ts));
      }
    }
  }
  return Status::OK();
}

}  // namespace rpm
